//===- NativeExecutor.h - Frame management for native activations ---*- C++ -*-===//
///
/// \file
/// Runs installed NativeCode against the runtime. The executor owns
/// what the machine code cannot: GC-rooted register frames (pooled per
/// recursion depth, exactly like the LinearExecutor — the frame's data
/// pointer is handed to the entry function in rsi and stays stable for
/// the whole activation because collections only start inside helpers,
/// which never touch the pool), the call/deopt handlers the helper
/// symbols dispatch through, and the per-top-level-call ops counter
/// that templates bump via r13.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_JIT_NATIVEEXECUTOR_H
#define JVM_JIT_NATIVEEXECUTOR_H

#include "jit/NativeCode.h"

#include <memory>
#include <vector>

namespace jvm {

class NativeExecutor {
public:
  NativeExecutor(Runtime &RT, CallHandler CallFn, DeoptHandlerFn DeoptFn);
  ~NativeExecutor();

  /// Executes \p N with \p Args; returns the method result.
  Value execute(const NativeCode &N, const std::vector<Value> &Args);

  /// Installs the virtual-dispatch receiver feed (speculation
  /// statistics), mirroring LinearExecutor::setReceiverProfile.
  void setReceiverProfile(ReceiverProfileFn Fn) {
    ProfileReceiver = std::move(Fn);
  }

  // Accessors for the extern "C" helper symbols (NativeExecutor.cpp);
  // not meant for general use.
  const CallHandler &callHandler() const { return Call; }
  const DeoptHandlerFn &deoptHandler() const { return Deopt; }
  const ReceiverProfileFn &receiverProfile() const { return ProfileReceiver; }
  std::vector<Value> &matScratch() { return MatScratch; }

private:
  Runtime &RT;
  CallHandler Call;
  DeoptHandlerFn Deopt;
  ReceiverProfileFn ProfileReceiver;
  NativeContext Ctx;
  /// Register frames by recursion depth; entries stay allocated between
  /// calls (cleared on reuse) so steady-state execution never mallocs.
  std::vector<std::unique_ptr<std::vector<Value>>> FramePool;
  unsigned Depth = 0;
  /// Instructions executed since the outermost native entry; flushed to
  /// the shared RuntimeMetrics block when Depth returns to zero (the
  /// same once-per-run accounting the linear dispatcher uses).
  uint64_t LocalOps = 0;
  /// Materialize staging (rooted by runMaterialize while in use).
  std::vector<Value> MatScratch;
  uint64_t RootToken = 0;
};

} // namespace jvm

#endif // JVM_JIT_NATIVEEXECUTOR_H
