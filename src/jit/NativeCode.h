//===- NativeCode.h - Installed native method + emitter entry -------*- C++ -*-===//
///
/// \file
/// Tier 4 of the execution stack: machine code produced by the
/// copy-and-patch emitter over a method's LinearCode. A NativeCode
/// pairs an executable CodeCache span with the LinearCode it was
/// emitted from — the side tables (calls, materialize/deopt
/// descriptors, move lists) stay in the LinearCode and are read by the
/// native tier's runtime helpers, so the deopt safety net is shared
/// with the linear tier rather than duplicated.
///
/// Emission is deliberately fallible: emitNativeCode returns null on a
/// non-x86-64 host, when the build disabled the backend, or when the
/// OS refuses executable memory. The VM counts that as a fallback and
/// keeps dispatching the method through the linear tier — never a
/// crash.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_JIT_NATIVECODE_H
#define JVM_JIT_NATIVECODE_H

#include "jit/CodeCache.h"
#include "vm/LinearCode.h"

#include <memory>
#include <string>

namespace jvm {

class NativeExecutor;

/// First argument of every native entry point (held in r12 throughout):
/// the runtime services the templates' helper calls reach back into.
struct NativeContext {
  Runtime *RT;
  NativeExecutor *Exec;
  /// Per-top-level-call instruction counter; templates bump it through
  /// r13 exactly once per executed instruction, mirroring the linear
  /// dispatcher's Ops accounting.
  uint64_t *Ops;
};

/// True when this build can emit and execute native code on this host
/// (x86-64, mmap available, JVM_ENABLE_NATIVE on).
bool nativeBackendSupported();

/// One method's installed machine code. Owned by the VM's MethodState
/// alongside the graph and linear versions; released through the same
/// retire/reclaim safe-point scheme.
class NativeCode {
public:
  /// SysV: rdi = context, rsi = register frame (GC-rooted, stable for
  /// the duration of the call). The 16-byte Value returns in rax:rdx.
  using EntryFn = Value (*)(NativeContext *, Value *Frame);

  NativeCode(const NativeCode &) = delete;
  NativeCode &operator=(const NativeCode &) = delete;
  ~NativeCode() { Cache.release(Span); }

  MethodId method() const { return L.method(); }
  const LinearCode &linear() const { return L; }
  unsigned numRegs() const { return L.numRegs(); }
  unsigned numParams() const { return L.numParams(); }
  bool hasEffects() const { return L.hasEffects(); }
  EntryFn entry() const { return Entry; }
  const uint8_t *codeBytes() const { return Span.Ptr; }
  size_t codeSize() const { return Span.CodeBytes; }
  /// The executable span, for CodeCache::describe at install time (the
  /// PC index and perf map need the mapped range plus method identity
  /// the cache itself never sees).
  const CodeCache::Span &span() const { return Span; }
  uint64_t emitNanos() const { return EmitNanos; }

private:
  friend std::unique_ptr<NativeCode>
  emitNativeCode(const LinearCode &, CodeCache &, std::string *);

  NativeCode(const LinearCode &L, CodeCache &Cache) : L(L), Cache(Cache) {}

  const LinearCode &L; ///< owned by the same MethodState, outlives us
  CodeCache &Cache;
  CodeCache::Span Span;
  EntryFn Entry = nullptr;
  uint64_t EmitNanos = 0;
  /// Parallel-phi staging buffer; its address is patched into Jump
  /// templates as an immediate. Safe to share across activations of
  /// this method: moves never allocate or call out mid-sequence, and
  /// exactly one mutator thread runs compiled code in this VM.
  std::unique_ptr<Value[]> MoveScratch;
};

/// Emits \p L as x86-64 machine code into \p Cache. Returns null (with
/// \p FailReason set, if given) when the backend cannot emit on this
/// host/build — the caller falls back to the linear tier.
std::unique_ptr<NativeCode> emitNativeCode(const LinearCode &L,
                                           CodeCache &Cache,
                                           std::string *FailReason = nullptr);

} // namespace jvm

#endif // JVM_JIT_NATIVECODE_H
