//===- NativeLayout.h - Object/Value offsets baked into templates --.-*- C++ -*-===//
///
/// \file
/// The copy-and-patch emitter hard-codes a handful of byte offsets into
/// its x86-64 templates: where a Value's tag and payload live inside a
/// register-frame slot, and where an object's slot array and length
/// field live relative to its header. This struct is the single point
/// where those numbers are derived from the real C++ layouts (it is a
/// friend of Value and HeapObject), with static_asserts so a layout
/// change breaks the build instead of the generated code.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_JIT_NATIVELAYOUT_H
#define JVM_JIT_NATIVELAYOUT_H

#include "memory/Object.h"
#include "runtime/Value.h"

#include <cstddef>

namespace jvm {

struct NativeLayout {
  // One register-frame slot is one Value: tag byte first, 8-byte
  // payload word (int or object pointer) second.
  static constexpr size_t ValueSize = sizeof(Value);
  static constexpr size_t ValueTag = offsetof(Value, Ty);
  static constexpr size_t ValuePayload = offsetof(Value, I);

  // Heap objects: fixed header, then NumSlots inline Value slots.
  static constexpr size_t ObjectNumSlots = offsetof(HeapObject, NumSlots);
  static constexpr size_t ObjectSlots = sizeof(HeapObject);

  // Generational write barrier: the store templates test the holder's
  // flag byte against this mask inline; only stores into old-space (or
  // humongous) objects fall through to the slow-path helper.
  static constexpr size_t ObjectFlags = offsetof(HeapObject, Flags);
  static constexpr uint8_t ObjectOldMask =
      HeapObject::FlagHumongous | HeapObject::FlagOld;

  // Inside the struct so the friendship covers the private-member
  // offsetof expressions.
  static_assert(sizeof(Value) == 16, "templates assume 16-byte slots");
  static_assert(offsetof(Value, Ty) == 0,
                "templates store the tag byte first");
  static_assert(offsetof(Value, I) == 8, "templates load payloads at slot+8");
  static_assert(offsetof(Value, R) == offsetof(Value, I),
                "int and ref payloads must alias");
  static_assert(sizeof(HeapObject) == 24, "slot base moved");
  static_assert(offsetof(HeapObject, Flags) < 128,
                "barrier templates address the flag byte with disp8");
};

static_assert(static_cast<int>(ValueType::Void) == 0 &&
                  static_cast<int>(ValueType::Int) == 1 &&
                  static_cast<int>(ValueType::Ref) == 2,
              "templates write tag immediates");

} // namespace jvm

#endif // JVM_JIT_NATIVELAYOUT_H
