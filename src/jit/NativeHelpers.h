//===- NativeHelpers.h - Runtime entry points of native templates ---*- C++ -*-===//
///
/// \file
/// The C symbols native code calls back into. Templates pass the same
/// four SysV arguments everywhere — context (r12), register frame
/// (rbx), the NativeCode being executed and the pc of the calling
/// instruction — and each helper re-reads its LInst from the shared
/// LinearCode tables, so the machine code itself carries no per-opcode
/// operand plumbing beyond the patch sites. Defined in
/// NativeExecutor.cpp; declared here for the emitter to take addresses.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_JIT_NATIVEHELPERS_H
#define JVM_JIT_NATIVEHELPERS_H

#include "jit/NativeCode.h"

#include <cstdint>

extern "C" {

void jvmNativeNewInstance(jvm::NativeContext *C, jvm::Value *R,
                          const jvm::NativeCode *N, uint32_t Pc);
void jvmNativeNewArray(jvm::NativeContext *C, jvm::Value *R,
                       const jvm::NativeCode *N, uint32_t Pc);
void jvmNativeLoadStatic(jvm::NativeContext *C, jvm::Value *R,
                         const jvm::NativeCode *N, uint32_t Pc);
void jvmNativeStoreStatic(jvm::NativeContext *C, jvm::Value *R,
                          const jvm::NativeCode *N, uint32_t Pc);
void jvmNativeMonitorEnter(jvm::NativeContext *C, jvm::Value *R,
                           const jvm::NativeCode *N, uint32_t Pc);
void jvmNativeMonitorExit(jvm::NativeContext *C, jvm::Value *R,
                          const jvm::NativeCode *N, uint32_t Pc);
void jvmNativeInstanceOf(jvm::NativeContext *C, jvm::Value *R,
                         const jvm::NativeCode *N, uint32_t Pc);
void jvmNativeInvoke(jvm::NativeContext *C, jvm::Value *R,
                     const jvm::NativeCode *N, uint32_t Pc);
void jvmNativeMaterialize(jvm::NativeContext *C, jvm::Value *R,
                          const jvm::NativeCode *N, uint32_t Pc);
/// Write-barrier slow path: the store templates filter young holders,
/// non-reference values, null, and old targets inline and only call
/// out when an old->young edge may have been created. Reads the
/// holder (I.A) and stored value (I.C) back from the register frame
/// and dirties the holder's card.
void jvmNativeWriteBarrier(jvm::NativeContext *C, jvm::Value *R,
                           const jvm::NativeCode *N, uint32_t Pc);
/// Rebuilds the DeoptRequest through the shared runDeopt path and runs
/// the VM's deopt handler; the template forwards the returned Value
/// (rax:rdx) straight to the method epilogue.
jvm::Value jvmNativeDeopt(jvm::NativeContext *C, jvm::Value *R,
                          const jvm::NativeCode *N, uint32_t Pc);
/// Kind: 0 = null dereference, 1 = array index out of bounds,
/// 2 = unreachable code executed. Fatal, like the linear tier's traps.
[[noreturn]] void jvmNativeTrap(jvm::NativeContext *C, jvm::Value *R,
                                const jvm::NativeCode *N, uint32_t Kind);

} // extern "C"

#endif // JVM_JIT_NATIVEHELPERS_H
