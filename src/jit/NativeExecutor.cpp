//===- NativeExecutor.cpp - Native frames and the helper symbols ---------------===//

#include "jit/NativeExecutor.h"

#include "jit/NativeHelpers.h"
#include "observability/Profiler.h"

#include <cassert>

using namespace jvm;

NativeExecutor::NativeExecutor(Runtime &RT, CallHandler CallFn,
                               DeoptHandlerFn DeoptFn)
    : RT(RT), Call(std::move(CallFn)), Deopt(std::move(DeoptFn)),
      Ctx{&RT, this, &LocalOps} {
  // The pooled frames of all active native activations are GC roots for
  // the lifetime of the executor; the visitor updates slots in place
  // when a collection moves objects (frames above Depth are stale and
  // cleared before reuse, so they are deliberately not visited).
  RootToken = RT.heap().addRootProvider([this](const RootVisitor &Visit) {
    for (unsigned D = 0; D != Depth; ++D)
      for (Value &V : *FramePool[D])
        Visit(V);
  });
}

NativeExecutor::~NativeExecutor() { RT.heap().removeRootProvider(RootToken); }

Value NativeExecutor::execute(const NativeCode &N,
                              const std::vector<Value> &Args) {
  // The shadow frame says "native tier"; ticks inside the machine code
  // also resolve their PC through the CodeCache index, while ticks
  // inside a C++ helper called from it keep the frame's attribution and
  // count as prof.native_pc_miss.
  ProfScope ProfFrame(ProfTierNative, N.method());
  ++RT.metrics().CompiledCalls;
  assert(Args.size() == N.numParams() && "argument count mismatch");
  assert(N.entry() && "executing native code that was never installed");
  if (Depth == FramePool.size())
    FramePool.push_back(std::make_unique<std::vector<Value>>());
  std::vector<Value> &R = *FramePool[Depth];
  R.assign(N.numRegs(), Value());
  for (unsigned I = 0, E = N.numParams(); I != E; ++I)
    R[I] = Args[I];
  ++Depth;
  Value Result = N.entry()(&Ctx, R.data());
  --Depth;
  if (Depth == 0) {
    RT.metrics().CompiledOps += LocalOps;
    LocalOps = 0;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Helper symbols — the C entry points of the machine-code templates.
// Uniform shape: re-read the calling LInst from the shared LinearCode
// tables and perform exactly what the linear dispatcher would.
//===----------------------------------------------------------------------===//

namespace {
const LInst &instAt(const jvm::NativeCode *N, uint32_t Pc) {
  return N->linear().Insts[Pc];
}
} // namespace

extern "C" void jvmNativeNewInstance(NativeContext *C, Value *R,
                                     const NativeCode *N, uint32_t Pc) {
  const LInst &I = instAt(N, Pc);
  R[I.Dst] =
      Value::makeRef(C->RT->allocateInstance(static_cast<ClassId>(I.A)));
}

extern "C" void jvmNativeNewArray(NativeContext *C, Value *R,
                                  const NativeCode *N, uint32_t Pc) {
  const LInst &I = instAt(N, Pc);
  R[I.Dst] = Value::makeRef(C->RT->heap().allocateArray(
      static_cast<ValueType>(I.Sub), R[I.A].asInt()));
}

extern "C" void jvmNativeLoadStatic(NativeContext *C, Value *R,
                                    const NativeCode *N, uint32_t Pc) {
  const LInst &I = instAt(N, Pc);
  R[I.Dst] = C->RT->getStatic(static_cast<StaticIndex>(I.A));
}

extern "C" void jvmNativeStoreStatic(NativeContext *C, Value *R,
                                     const NativeCode *N, uint32_t Pc) {
  const LInst &I = instAt(N, Pc);
  C->RT->setStatic(static_cast<StaticIndex>(I.A), R[I.B]);
}

extern "C" void jvmNativeMonitorEnter(NativeContext *C, Value *R,
                                      const NativeCode *N, uint32_t Pc) {
  const LInst &I = instAt(N, Pc);
  HeapObject *O = R[I.A].asRef();
  if (!O)
    reportCompiledTrap(N->method(), "null dereference");
  C->RT->monitorEnter(O);
}

extern "C" void jvmNativeMonitorExit(NativeContext *C, Value *R,
                                     const NativeCode *N, uint32_t Pc) {
  const LInst &I = instAt(N, Pc);
  HeapObject *O = R[I.A].asRef();
  if (!O)
    reportCompiledTrap(N->method(), "null dereference");
  C->RT->monitorExit(O);
}

extern "C" void jvmNativeInstanceOf(NativeContext *C, Value *R,
                                    const NativeCode *N, uint32_t Pc) {
  const LInst &I = instAt(N, Pc);
  HeapObject *O = R[I.A].asRef();
  ClassId Cls = static_cast<ClassId>(I.B);
  bool Is = O && !O->isArray() &&
            (I.Sub ? O->objectClass() == Cls
                   : C->RT->program().isSubclassOf(O->objectClass(), Cls));
  R[I.Dst] = Value::makeInt(Is ? 1 : 0);
}

extern "C" void jvmNativeInvoke(NativeContext *C, Value *R,
                                const NativeCode *N, uint32_t Pc) {
  const LinearCode &L = N->linear();
  const LInst &I = L.Insts[Pc];
  const LinearCode::CallDesc &D = L.Calls[I.A];
  std::vector<Value> CallArgs(D.NumArgs);
  const uint32_t *AR = L.CallArgRegs.data() + D.FirstArg;
  for (uint32_t K = 0; K != D.NumArgs; ++K)
    CallArgs[K] = R[AR[K]];
  MethodId Target = D.Callee;
  if (D.Kind == CallKind::Virtual) {
    HeapObject *Receiver = CallArgs[0].asRef();
    if (!Receiver)
      reportCompiledTrap(L.method(), "null receiver");
    Target = C->RT->program().resolveVirtual(D.Callee, Receiver->objectClass());
    if (C->Exec->receiverProfile() && D.Bci >= 0)
      C->Exec->receiverProfile()(L.method(), D.Bci, Receiver->objectClass());
  }
  R[I.Dst] = C->Exec->callHandler()(Target, std::move(CallArgs));
}

extern "C" void jvmNativeMaterialize(NativeContext *C, Value *R,
                                     const NativeCode *N, uint32_t Pc) {
  const LinearCode &L = N->linear();
  const LInst &I = L.Insts[Pc];
  runMaterialize(*C->RT, L, L.Mats[I.A], R, C->Exec->matScratch());
}

extern "C" void jvmNativeWriteBarrier(NativeContext *C, Value *R,
                                      const NativeCode *N, uint32_t Pc) {
  const LInst &I = instAt(N, Pc);
  // The template already performed the store; only the remembered-set
  // update runs here. I.A/I.C are the holder and value registers for
  // both StoreField and StoreIndexed.
  C->RT->heap().writeBarrier(R[I.A].asRef(), R[I.C]);
}

extern "C" Value jvmNativeDeopt(NativeContext *C, Value *R,
                                const NativeCode *N, uint32_t Pc) {
  const LinearCode &L = N->linear();
  const LInst &I = L.Insts[Pc];
  return runDeopt(*C->RT, L, L.Deopts[I.A], R, C->Exec->deoptHandler());
}

extern "C" void jvmNativeTrap(NativeContext *C, Value *R, const NativeCode *N,
                              uint32_t Kind) {
  (void)C;
  (void)R;
  reportCompiledTrap(N->method(), Kind == 0   ? "null dereference"
                                  : Kind == 1 ? "array index out of bounds"
                                              : "unreachable code executed");
}
