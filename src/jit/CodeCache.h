//===- CodeCache.h - Executable memory for the native tier ----------*- C++ -*-===//
///
/// \file
/// Owns the executable pages native methods run from. Each installed
/// method gets its own page-granular mmap span with strict W^X
/// discipline: the span is mapped read-write, the finished code is
/// copied in, then the protection flips to read-execute before the
/// entry pointer escapes — no page is ever writable and executable at
/// the same time, and because spans are never shared between methods a
/// broker worker patching one method can never race a mutator executing
/// another on the same page.
///
/// Spans are returned to the OS when the owning NativeCode is reclaimed
/// (invalidation/retirement goes through the VM's safe-point scheme, so
/// nothing can still be executing the span by then). Counters feed the
/// code.cache_* metrics gauges.
///
/// The cache also owns the **PC index**: a fixed array of per-slot
/// seqlock-protected (start, end, method, isolate) ranges the sampling
/// profiler's SIGPROF handler resolves native-tier PCs through. Readers
/// never lock and never retry — a slot whose generation is odd or moves
/// across the read was interrupted mid-update and is simply skipped for
/// this sample (the profiler counts it as a PC miss; the next tick sees
/// the finished slot). describe() feeds the index at install time and
/// also appends `perf`-style `/tmp/perf-<pid>.map` lines when
/// JVM_PERF_MAP is on, so external Linux perf can symbolize the
/// copy-and-patch tier.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_JIT_CODECACHE_H
#define JVM_JIT_CODECACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace jvm {

class CodeCache {
public:
  /// One installed method's executable span. Ptr/MappedBytes describe
  /// the mmap region (page multiple); CodeBytes is the useful prefix.
  struct Span {
    uint8_t *Ptr = nullptr;
    size_t MappedBytes = 0;
    size_t CodeBytes = 0;
    explicit operator bool() const { return Ptr != nullptr; }
  };

  CodeCache() = default;
  CodeCache(const CodeCache &) = delete;
  CodeCache &operator=(const CodeCache &) = delete;

  /// The process-shared cache every isolate installs into. One pool of
  /// executable memory per process (like HotSpot's code cache), while
  /// each isolate keeps its own method-indexed tables of NativeCode
  /// pointing into it; spans still release when the owning isolate
  /// reclaims the NativeCode. Counters therefore aggregate all tenants.
  static CodeCache &process();

  /// Maps a fresh span, copies \p Bytes of finished machine code into
  /// it and seals it read-execute. Returns an empty span if the OS
  /// refuses (counted; the caller falls back to the linear tier).
  Span install(const uint8_t *Code, size_t Bytes);

  /// Unmaps \p S, drops its PC-index entry, and rolls its footprint out
  /// of the counters. The VM only calls this after safe-point
  /// reclamation proved no frame can still be executing inside the span.
  void release(const Span &S);

  /// Publishes \p S's identity into the PC index (and the perf map when
  /// JVM_PERF_MAP is on). Called by the isolate once the span's method
  /// is known, i.e. at NativeCode install time; \p Name is copied where
  /// needed, not retained. Silently counted when the slot array is full.
  void describe(const Span &S, uint32_t Method, uint32_t Isolate,
                const char *Name);

  /// Async-signal-safe PC resolution: true if \p Pc lies inside a
  /// described live span. A slot mid-update (generation odd or moved
  /// across the read) is skipped, never spun on — the handler may have
  /// interrupted the writer it would be waiting for.
  bool lookupPc(uintptr_t Pc, uint32_t &MethodOut, uint32_t &IsolateOut) const;

  uint64_t reservedBytes() const {
    return Reserved.load(std::memory_order_relaxed);
  }
  uint64_t codeBytes() const { return Code.load(std::memory_order_relaxed); }
  uint64_t methods() const { return Methods.load(std::memory_order_relaxed); }
  uint64_t pcSlotOverflows() const {
    return PcOverflow.load(std::memory_order_relaxed);
  }

private:
  /// One PC-index slot: a per-slot seqlock. Gen even = stable, odd =
  /// writer inside; Start == 0 = free.
  struct PcSlot {
    std::atomic<uint32_t> Gen{0};
    std::atomic<uintptr_t> Start{0};
    std::atomic<uintptr_t> End{0};
    std::atomic<uint64_t> MethodIso{0}; ///< method << 32 | isolate
  };
  static constexpr size_t NumPcSlots = 2048;

  std::atomic<uint64_t> Reserved{0}; ///< mmap'd bytes currently live
  std::atomic<uint64_t> Code{0};     ///< useful code bytes currently live
  std::atomic<uint64_t> Methods{0};  ///< spans currently live

  PcSlot PcSlots[NumPcSlots];
  /// Upper bound of slots ever used — bounds the handler's scan.
  std::atomic<size_t> PcSlotsUsed{0};
  std::atomic<uint64_t> PcOverflow{0};
  std::mutex PcMutex; ///< serializes writers (describe / release)
};

} // namespace jvm

#endif // JVM_JIT_CODECACHE_H
