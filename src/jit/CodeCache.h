//===- CodeCache.h - Executable memory for the native tier ----------*- C++ -*-===//
///
/// \file
/// Owns the executable pages native methods run from. Each installed
/// method gets its own page-granular mmap span with strict W^X
/// discipline: the span is mapped read-write, the finished code is
/// copied in, then the protection flips to read-execute before the
/// entry pointer escapes — no page is ever writable and executable at
/// the same time, and because spans are never shared between methods a
/// broker worker patching one method can never race a mutator executing
/// another on the same page.
///
/// Spans are returned to the OS when the owning NativeCode is reclaimed
/// (invalidation/retirement goes through the VM's safe-point scheme, so
/// nothing can still be executing the span by then). Counters feed the
/// code.cache_* metrics gauges.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_JIT_CODECACHE_H
#define JVM_JIT_CODECACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace jvm {

class CodeCache {
public:
  /// One installed method's executable span. Ptr/MappedBytes describe
  /// the mmap region (page multiple); CodeBytes is the useful prefix.
  struct Span {
    uint8_t *Ptr = nullptr;
    size_t MappedBytes = 0;
    size_t CodeBytes = 0;
    explicit operator bool() const { return Ptr != nullptr; }
  };

  CodeCache() = default;
  CodeCache(const CodeCache &) = delete;
  CodeCache &operator=(const CodeCache &) = delete;

  /// The process-shared cache every isolate installs into. One pool of
  /// executable memory per process (like HotSpot's code cache), while
  /// each isolate keeps its own method-indexed tables of NativeCode
  /// pointing into it; spans still release when the owning isolate
  /// reclaims the NativeCode. Counters therefore aggregate all tenants.
  static CodeCache &process();

  /// Maps a fresh span, copies \p Bytes of finished machine code into
  /// it and seals it read-execute. Returns an empty span if the OS
  /// refuses (counted; the caller falls back to the linear tier).
  Span install(const uint8_t *Code, size_t Bytes);

  /// Unmaps \p S and rolls its footprint out of the counters. The VM
  /// only calls this after safe-point reclamation proved no frame can
  /// still be executing inside the span.
  void release(const Span &S);

  uint64_t reservedBytes() const {
    return Reserved.load(std::memory_order_relaxed);
  }
  uint64_t codeBytes() const { return Code.load(std::memory_order_relaxed); }
  uint64_t methods() const { return Methods.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Reserved{0}; ///< mmap'd bytes currently live
  std::atomic<uint64_t> Code{0};     ///< useful code bytes currently live
  std::atomic<uint64_t> Methods{0};  ///< spans currently live
};

} // namespace jvm

#endif // JVM_JIT_CODECACHE_H
