//===- CodeCache.cpp - mmap-backed W^X executable spans ------------------------===//

#include "jit/CodeCache.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define JVM_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define JVM_HAVE_MMAP 0
#endif

using namespace jvm;

CodeCache &CodeCache::process() {
  // Meyers static: outlives every isolate constructed in main() and is
  // destroyed (empty — all spans released with their isolates) at exit,
  // keeping leak checkers quiet.
  static CodeCache C;
  return C;
}

CodeCache::Span CodeCache::install(const uint8_t *Bytes, size_t Size) {
#if JVM_HAVE_MMAP
  if (Size == 0)
    return {};
  static const size_t Page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  size_t Mapped = (Size + Page - 1) & ~(Page - 1);
  void *P = ::mmap(nullptr, Mapped, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return {};
  std::memcpy(P, Bytes, Size);
  // W^X flip: writable mapping becomes execute-only-after-read. On
  // x86-64 the mprotect's kernel round-trip also serializes the store
  // buffer, so no explicit icache flush is needed on this architecture
  // (and __builtin___clear_cache would be the hook for ones that do).
  if (::mprotect(P, Mapped, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(P, Mapped);
    return {};
  }
  Reserved.fetch_add(Mapped, std::memory_order_relaxed);
  Code.fetch_add(Size, std::memory_order_relaxed);
  Methods.fetch_add(1, std::memory_order_relaxed);
  return {static_cast<uint8_t *>(P), Mapped, Size};
#else
  (void)Bytes;
  (void)Size;
  return {};
#endif
}

void CodeCache::release(const Span &S) {
  if (!S)
    return;
#if JVM_HAVE_MMAP
  ::munmap(S.Ptr, S.MappedBytes);
#endif
  Reserved.fetch_sub(S.MappedBytes, std::memory_order_relaxed);
  Code.fetch_sub(S.CodeBytes, std::memory_order_relaxed);
  Methods.fetch_sub(1, std::memory_order_relaxed);
}
