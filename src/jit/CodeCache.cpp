//===- CodeCache.cpp - mmap-backed W^X executable spans ------------------------===//

#include "jit/CodeCache.h"

#include "observability/Profiler.h"
#include "support/Env.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define JVM_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define JVM_HAVE_MMAP 0
#endif

using namespace jvm;

namespace {

/// The profiler-facing resolver trampoline (Profiler::PcResolverFn):
/// plain function pointer, installed once at CodeCache construction.
bool resolvePcForProfiler(uintptr_t Pc, uint32_t &MethodOut,
                          uint32_t &IsolateOut) {
  return CodeCache::process().lookupPc(Pc, MethodOut, IsolateOut);
}

/// Appends one `perf` map line for a described span. perf's JIT map
/// format is append-only (`<start-hex> <size-hex> <name>`); stale lines
/// from released spans are harmless — perf uses the last match.
void appendPerfMapLine(uintptr_t Start, size_t Bytes, const char *Name,
                       uint32_t Isolate) {
#if JVM_HAVE_MMAP
  char Path[64];
  std::snprintf(Path, sizeof(Path), "/tmp/perf-%d.map", int(getpid()));
  if (std::FILE *F = std::fopen(Path, "a")) {
    std::fprintf(F, "%lx %lx jit::%s@iso%u\n", static_cast<unsigned long>(Start),
                 static_cast<unsigned long>(Bytes), Name ? Name : "?", Isolate);
    std::fclose(F);
  }
#else
  (void)Start;
  (void)Bytes;
  (void)Name;
  (void)Isolate;
#endif
}

} // namespace

CodeCache &CodeCache::process() {
  // Meyers static: outlives every isolate constructed in main() and is
  // destroyed (empty — all spans released with their isolates) at exit,
  // keeping leak checkers quiet.
  static CodeCache C;
  // Installed here, not in the profiler: the observability layer sits
  // below the JIT in the link order and cannot name the CodeCache.
  static bool ResolverInstalled =
      (Profiler::setPcResolver(&resolvePcForProfiler), true);
  (void)ResolverInstalled;
  return C;
}

CodeCache::Span CodeCache::install(const uint8_t *Bytes, size_t Size) {
#if JVM_HAVE_MMAP
  if (Size == 0)
    return {};
  static const size_t Page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  size_t Mapped = (Size + Page - 1) & ~(Page - 1);
  void *P = ::mmap(nullptr, Mapped, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return {};
  std::memcpy(P, Bytes, Size);
  // W^X flip: writable mapping becomes execute-only-after-read. On
  // x86-64 the mprotect's kernel round-trip also serializes the store
  // buffer, so no explicit icache flush is needed on this architecture
  // (and __builtin___clear_cache would be the hook for ones that do).
  if (::mprotect(P, Mapped, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(P, Mapped);
    return {};
  }
  Reserved.fetch_add(Mapped, std::memory_order_relaxed);
  Code.fetch_add(Size, std::memory_order_relaxed);
  Methods.fetch_add(1, std::memory_order_relaxed);
  return {static_cast<uint8_t *>(P), Mapped, Size};
#else
  (void)Bytes;
  (void)Size;
  return {};
#endif
}

void CodeCache::describe(const Span &S, uint32_t Method, uint32_t Isolate,
                         const char *Name) {
  if (!S)
    return;
  uintptr_t Start = reinterpret_cast<uintptr_t>(S.Ptr);
  {
    std::lock_guard<std::mutex> L(PcMutex);
    size_t Used = PcSlotsUsed.load(std::memory_order_relaxed);
    size_t Free = NumPcSlots;
    for (size_t I = 0; I < Used; ++I)
      if (PcSlots[I].Start.load(std::memory_order_relaxed) == 0) {
        Free = I;
        break;
      }
    if (Free == NumPcSlots && Used < NumPcSlots) {
      Free = Used;
      PcSlotsUsed.store(Used + 1, std::memory_order_release);
    }
    if (Free == NumPcSlots) {
      PcOverflow.fetch_add(1, std::memory_order_relaxed);
    } else {
      PcSlot &Slot = PcSlots[Free];
      uint32_t G = Slot.Gen.load(std::memory_order_relaxed);
      Slot.Gen.store(G + 1, std::memory_order_relaxed); // odd: mid-update
      std::atomic_thread_fence(std::memory_order_release);
      Slot.End.store(Start + S.CodeBytes, std::memory_order_relaxed);
      Slot.MethodIso.store((uint64_t(Method) << 32) | Isolate,
                           std::memory_order_relaxed);
      Slot.Start.store(Start, std::memory_order_relaxed);
      Slot.Gen.store(G + 2, std::memory_order_release); // even: stable
    }
  }
  if (EnvSnapshot::isOn(EnvSnapshot::process().PerfMap))
    appendPerfMapLine(Start, S.CodeBytes, Name, Isolate);
}

bool CodeCache::lookupPc(uintptr_t Pc, uint32_t &MethodOut,
                         uint32_t &IsolateOut) const {
  size_t Used = PcSlotsUsed.load(std::memory_order_acquire);
  for (size_t I = 0; I < Used; ++I) {
    const PcSlot &Slot = PcSlots[I];
    uint32_t G1 = Slot.Gen.load(std::memory_order_acquire);
    if (G1 & 1)
      continue; // writer inside — skip, never spin
    uintptr_t Start = Slot.Start.load(std::memory_order_relaxed);
    uintptr_t End = Slot.End.load(std::memory_order_relaxed);
    uint64_t MI = Slot.MethodIso.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (Slot.Gen.load(std::memory_order_relaxed) != G1)
      continue; // moved under us — this sample misses, the next won't
    if (Start == 0 || Pc < Start || Pc >= End)
      continue;
    MethodOut = uint32_t(MI >> 32);
    IsolateOut = uint32_t(MI);
    return true;
  }
  return false;
}

void CodeCache::release(const Span &S) {
  if (!S)
    return;
  uintptr_t Start = reinterpret_cast<uintptr_t>(S.Ptr);
  {
    // Drop the PC-index entry before the pages go away so the handler
    // can never resolve a PC into an unmapped (or re-mapped) span.
    std::lock_guard<std::mutex> L(PcMutex);
    size_t Used = PcSlotsUsed.load(std::memory_order_relaxed);
    for (size_t I = 0; I < Used; ++I) {
      PcSlot &Slot = PcSlots[I];
      if (Slot.Start.load(std::memory_order_relaxed) != Start)
        continue;
      uint32_t G = Slot.Gen.load(std::memory_order_relaxed);
      Slot.Gen.store(G + 1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
      Slot.Start.store(0, std::memory_order_relaxed);
      Slot.End.store(0, std::memory_order_relaxed);
      Slot.MethodIso.store(0, std::memory_order_relaxed);
      Slot.Gen.store(G + 2, std::memory_order_release);
      break;
    }
  }
#if JVM_HAVE_MMAP
  ::munmap(S.Ptr, S.MappedBytes);
#endif
  Reserved.fetch_sub(S.MappedBytes, std::memory_order_relaxed);
  Code.fetch_sub(S.CodeBytes, std::memory_order_relaxed);
  Methods.fetch_sub(1, std::memory_order_relaxed);
}
