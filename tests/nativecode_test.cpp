//===- nativecode_test.cpp - Native tier vs linear tier equivalence ------------===//
//
// The copy-and-patch x86-64 tier must be observationally identical to
// the linear dispatcher it accelerates: same results, same heap
// activity, same monitor/deopt/ops accounting — per opcode on
// hand-built single-LOp methods, on hand-built graphs (phi swaps,
// cyclic materialization, deopt state reconstruction), and on every
// synthetic benchmark row whole-VM under ExecMode::Differential, which
// cross-checks all three tiers against each other on every compiled
// call. Also covers the exec-mode configuration surface: name parsing,
// the hard error on unknown JVM_EXEC_MODE values, and the
// EnableNativeTier escape hatch.
//
// On builds without the backend (non-x86-64 or -DJVM_ENABLE_NATIVE=OFF)
// every native-dependent test skips; the parsing tests still run.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "jit/NativeExecutor.h"
#include "vm/VirtualMachine.h"
#include "workloads/Suites.h"

#include "CompileTestHelpers.h"
#include "TestPrograms.h"

#include <climits>
#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testjit;
using namespace jvm::testprogs;

namespace {

//===----------------------------------------------------------------------===//
// Exec-mode configuration
//===----------------------------------------------------------------------===//

TEST(ExecModeParseTest, KnownNamesParse) {
  ExecMode M;
  ASSERT_TRUE(execModeFromName("graph", M));
  EXPECT_EQ(M, ExecMode::Graph);
  ASSERT_TRUE(execModeFromName("linear", M));
  EXPECT_EQ(M, ExecMode::Linear);
  ASSERT_TRUE(execModeFromName("native", M));
  EXPECT_EQ(M, ExecMode::Native);
  ASSERT_TRUE(execModeFromName("differential", M));
  EXPECT_EQ(M, ExecMode::Differential);
  ASSERT_TRUE(execModeFromName("both", M));
  EXPECT_EQ(M, ExecMode::Differential);
  EXPECT_FALSE(execModeFromName("turbo", M));
  EXPECT_FALSE(execModeFromName("", M));
}

TEST(ExecModeParseTest, NamesRoundTrip) {
  for (ExecMode M : {ExecMode::Graph, ExecMode::Linear, ExecMode::Native,
                     ExecMode::Differential}) {
    ExecMode Parsed;
    ASSERT_TRUE(execModeFromName(execModeName(M), Parsed)) << execModeName(M);
    EXPECT_EQ(Parsed, M);
  }
}

TEST(ExecModeParseTest, EnvironmentDefaultsToLinear) {
  EXPECT_EQ(execModeFromEnvironment(nullptr), ExecMode::Linear);
  EXPECT_EQ(execModeFromEnvironment(""), ExecMode::Linear);
}

TEST(ExecModeParseDeathTest, UnknownEnvironmentValueIsFatal) {
  // A bench run silently falling back to the wrong tier would corrupt
  // its comparison, so JVM_EXEC_MODE=turbo must die naming the valid
  // modes rather than pick one.
  EXPECT_DEATH(execModeFromEnvironment("turbo"),
               "unknown JVM_EXEC_MODE 'turbo'.*graph.*linear.*native");
}

//===----------------------------------------------------------------------===//
// Per-opcode harness: hand-built single-LOp methods through both tiers
//===----------------------------------------------------------------------===//

/// Builds minimal LinearCode by hand (the translator is bypassed on
/// purpose: each test pins down ONE opcode's template against the
/// dispatcher's semantics for the same instruction) and runs it through
/// the LinearExecutor and the native backend with identical canned
/// call/deopt handlers.
struct LOpHarness {
  Program P;
  ClassId Base = NoClass, Derived = NoClass;
  FieldIndex F0 = -1, F1 = -1;
  StaticIndex G0 = 0;
  MethodId Neg = NoMethod;

  std::vector<DeoptRequest> DeoptReqs;
  Value DeoptResult = Value::makeInt(-7);

  /// Everything observable about one run, for tier-vs-tier EXPECT_EQ.
  struct Observed {
    Value Ret;
    uint64_t Allocs = 0;
    uint64_t MonitorOps = 0;
    uint64_t Deopts = 0;
    uint64_t CompiledOps = 0;
    size_t DeoptReqCount = 0;
  };

  LOpHarness() {
    Base = P.addClass("Base");
    Derived = P.addClass("Derived", Base);
    F0 = P.addField(Base, "f0", ValueType::Int);
    F1 = P.addField(Base, "f1", ValueType::Ref);
    G0 = P.addStatic("g0", ValueType::Int);
    Neg = P.addMethod("neg", NoClass, {ValueType::Int}, ValueType::Int);
  }

  LinearCode makeCode(std::vector<LInst> Insts, unsigned NumRegs,
                      unsigned NumParams) {
    LinearCode L;
    L.Insts = std::move(Insts);
    L.NumRegs = NumRegs;
    L.NumParams = NumParams;
    L.Method = 0;
    return L;
  }

  CallHandler callHandler() {
    return [](MethodId, std::vector<Value> &&A) {
      return Value::makeInt(-A[0].asInt());
    };
  }
  DeoptHandlerFn deoptHandler() {
    return [this](DeoptRequest &&Req) {
      DeoptReqs.push_back(std::move(Req));
      return DeoptResult;
    };
  }

  Observed runLinear(Runtime &RT, const LinearCode &L,
                     std::vector<Value> Args) {
    DeoptReqs.clear();
    LinearExecutor Ex(RT, callHandler(), deoptHandler());
    Runtime::RootScope Roots(RT, &Args);
    return observe(RT, Ex.execute(L, Args));
  }

  Observed runNative(Runtime &RT, const LinearCode &L,
                     std::vector<Value> Args) {
    DeoptReqs.clear();
    CodeCache Cache;
    std::string Why;
    std::unique_ptr<NativeCode> N = emitNativeCode(L, Cache, &Why);
    EXPECT_NE(N, nullptr) << "emit failed: " << Why;
    if (!N)
      return Observed{};
    EXPECT_GT(N->codeSize(), 0u);
    NativeExecutor Ex(RT, callHandler(), deoptHandler());
    Runtime::RootScope Roots(RT, &Args);
    return observe(RT, Ex.execute(*N, Args));
  }

  Observed observe(Runtime &RT, Value Ret) {
    Observed O;
    O.Ret = Ret;
    O.Allocs = RT.heap().allocationCount();
    O.MonitorOps = RT.metrics().MonitorOps;
    O.Deopts = RT.metrics().Deopts;
    O.CompiledOps = RT.metrics().CompiledOps;
    O.DeoptReqCount = DeoptReqs.size();
    return O;
  }

  /// Runs \p L through both tiers (fresh runtime each) and checks every
  /// observable agrees — including CompiledOps, so the templates' r13
  /// accounting mirrors the dispatcher's per-instruction counting.
  void expectTiersAgree(const LinearCode &L, std::vector<Value> Args,
                        const char *What) {
    Runtime LinRT(P);
    Observed Lin = runLinear(LinRT, L, Args);
    Runtime NatRT(P);
    Observed Nat = runNative(NatRT, L, Args);
    EXPECT_EQ(Lin.Ret, Nat.Ret) << What;
    EXPECT_EQ(Lin.Allocs, Nat.Allocs) << What;
    EXPECT_EQ(Lin.MonitorOps, Nat.MonitorOps) << What;
    EXPECT_EQ(Lin.Deopts, Nat.Deopts) << What;
    EXPECT_EQ(Lin.CompiledOps, Nat.CompiledOps) << What;
    EXPECT_EQ(Lin.DeoptReqCount, Nat.DeoptReqCount) << What;
  }
};

#define SKIP_WITHOUT_NATIVE()                                                  \
  do {                                                                         \
    if (!nativeBackendSupported())                                             \
      GTEST_SKIP() << "native backend not built for this host";                \
  } while (0)

TEST(NativeOpTest, ConstIntAndRet) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  LinearCode L = H.makeCode({{LOp::ConstInt, 0, 0, 0, 0, 0},
                             {LOp::Ret, 0, 0, 0, 0, 0}},
                            /*NumRegs=*/1, /*NumParams=*/0);
  L.IntPool.push_back(INT64_MIN + 5);
  H.expectTiersAgree(L, {}, "const-int");
}

TEST(NativeOpTest, ConstNullAndRetVoid) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  {
    LinearCode L = H.makeCode({{LOp::ConstNull, 0, 0, 0, 0, 0},
                               {LOp::Ret, 0, 0, 0, 0, 0}},
                              1, 0);
    H.expectTiersAgree(L, {}, "const-null");
  }
  {
    LinearCode L = H.makeCode({{LOp::RetVoid, 0, 0, 0, 0, 0}}, 0, 0);
    H.expectTiersAgree(L, {}, "ret-void");
  }
}

TEST(NativeOpTest, ArithMatchesLinearOnEdgeCases) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  // The pairs that make idiv/shift lowering interesting: division by
  // zero and by -1 (the INT64_MIN quotient overflow x86 faults on),
  // wrapping multiply/add, out-of-range and negative shift counts.
  const std::pair<int64_t, int64_t> Pairs[] = {
      {7, 3},           {-7, 3},         {7, -3},
      {INT64_MIN, -1},  {INT64_MIN, 1},  {123, 0},
      {0, 0},           {INT64_MAX, 2},  {INT64_MAX, INT64_MAX},
      {1, 63},          {1, 64},         {1, -1},
      {-1, 65},         {INT64_MIN, 63}, {-9, 2}};
  for (unsigned K = 0; K != static_cast<unsigned>(ArithKind::Shr) + 1; ++K) {
    LinearCode L = H.makeCode(
        {{LOp::Arith, static_cast<uint8_t>(K), 2, 0, 1, 0},
         {LOp::Ret, 0, 0, 2, 0, 0}},
        3, 2);
    for (auto [X, Y] : Pairs) {
      char What[96];
      std::snprintf(What, sizeof(What), "arith kind=%u X=%lld Y=%lld", K,
                    (long long)X, (long long)Y);
      H.expectTiersAgree(L, {Value::makeInt(X), Value::makeInt(Y)}, What);
    }
  }
}

TEST(NativeOpTest, CompareKinds) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  for (CmpKind K : {CmpKind::IntEq, CmpKind::IntLt, CmpKind::IntLe}) {
    LinearCode L = H.makeCode(
        {{LOp::Compare, static_cast<uint8_t>(K), 2, 0, 1, 0},
         {LOp::Ret, 0, 0, 2, 0, 0}},
        3, 2);
    for (auto [X, Y] : {std::pair<int64_t, int64_t>{3, 3},
                        {3, 4},
                        {4, 3},
                        {INT64_MIN, INT64_MAX},
                        {-1, -1}}) {
      char What[64];
      std::snprintf(What, sizeof(What), "cmp kind=%d X=%lld Y=%lld", (int)K,
                    (long long)X, (long long)Y);
      H.expectTiersAgree(L, {Value::makeInt(X), Value::makeInt(Y)}, What);
    }
  }
  // RefEq / IsNull on a real object vs null: the ref arrives through an
  // allocation so both tiers compare the same pointer shape.
  LinearCode RefEqL = H.makeCode(
      {{LOp::NewInstance, 0, 0, static_cast<uint32_t>(H.Base), 0, 0},
       {LOp::ConstNull, 0, 1, 0, 0, 0},
       {LOp::Compare, static_cast<uint8_t>(CmpKind::RefEq), 2, 0, 0, 0},
       {LOp::Compare, static_cast<uint8_t>(CmpKind::RefEq), 3, 0, 1, 0},
       {LOp::Compare, static_cast<uint8_t>(CmpKind::IsNull), 4, 0, 0, 0},
       {LOp::Compare, static_cast<uint8_t>(CmpKind::IsNull), 5, 1, 0, 0},
       // Encode all four bits: 1000*self + 100*vsnull + 10*isnull + null.
       {LOp::ConstInt, 0, 6, 0, 0, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Mul), 2, 2, 6, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Add), 2, 2, 3, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Mul), 2, 2, 6, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Add), 2, 2, 4, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Mul), 2, 2, 6, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Add), 2, 2, 5, 0},
       {LOp::Ret, 0, 0, 2, 0, 0}},
      7, 0);
  RefEqL.IntPool.push_back(10);
  H.expectTiersAgree(RefEqL, {}, "ref-eq/is-null");
}

TEST(NativeOpTest, BranchTakesBothArms) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  // if (p0) return 11 else return 22 — exercised with the taken arm
  // both falling through and jumping.
  LinearCode L = H.makeCode({{LOp::Branch, 0, 0, 0, 1, 3},
                             {LOp::ConstInt, 0, 1, 0, 0, 0},
                             {LOp::Ret, 0, 0, 1, 0, 0},
                             {LOp::ConstInt, 0, 1, 1, 0, 0},
                             {LOp::Ret, 0, 0, 1, 0, 0}},
                            2, 1);
  L.IntPool = {11, 22};
  for (int64_t X : {0L, 1L, -1L, 42L}) {
    char What[32];
    std::snprintf(What, sizeof(What), "branch p0=%lld", (long long)X);
    H.expectTiersAgree(L, {Value::makeInt(X)}, What);
  }
}

TEST(NativeOpTest, JumpParallelMovesSwapAndCycle) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  // Three-register rotation through one Jump move list: parallel
  // semantics require all sources read before any destination writes.
  LinearCode L = H.makeCode(
      {{LOp::Jump, 0, 0, 1, 0, 0}, // moves r0<-r1, r1<-r2, r2<-r0
       // r0*100 + r1*10 + r2
       {LOp::ConstInt, 0, 3, 0, 0, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Mul), 4, 0, 3, 0},
       {LOp::ConstInt, 0, 5, 1, 0, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Mul), 6, 1, 5, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Add), 4, 4, 6, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Add), 4, 4, 2, 0},
       {LOp::Ret, 0, 0, 4, 0, 0}},
      7, 3);
  L.IntPool = {100, 10};
  L.Moves = {{0, 1}, {1, 2}, {2, 0}};
  L.MoveLists = {{0, 3}};
  L.MaxMoves = 3;
  H.expectTiersAgree(
      L, {Value::makeInt(1), Value::makeInt(2), Value::makeInt(3)},
      "jump rotation");
  // Single-move fast path (Count == 1 is a direct copy in the template).
  LinearCode S = H.makeCode({{LOp::Jump, 0, 0, 1, 0, 0},
                             {LOp::Ret, 0, 0, 1, 0, 0}},
                            2, 1);
  S.Moves = {{1, 0}};
  S.MoveLists = {{0, 1}};
  S.MaxMoves = 1;
  H.expectTiersAgree(S, {Value::makeInt(77)}, "jump single move");
}

TEST(NativeOpTest, FieldRoundTrip) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  // new Base; f0 = p0; f1 = self; return f0 + (f1 == self).
  LinearCode L = H.makeCode(
      {{LOp::NewInstance, 0, 1, static_cast<uint32_t>(H.Base), 0, 0},
       {LOp::StoreField, 0, 0, 1, static_cast<uint32_t>(H.F0), 0},
       {LOp::StoreField, 0, 0, 1, static_cast<uint32_t>(H.F1), 1},
       {LOp::LoadField, 0, 2, 1, static_cast<uint32_t>(H.F0), 0},
       {LOp::LoadField, 0, 3, 1, static_cast<uint32_t>(H.F1), 0},
       {LOp::Compare, static_cast<uint8_t>(CmpKind::RefEq), 3, 3, 1, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Add), 2, 2, 3, 0},
       {LOp::Ret, 0, 0, 2, 0, 0}},
      4, 1);
  H.expectTiersAgree(L, {Value::makeInt(41)}, "field round trip");
}

TEST(NativeOpTest, ArrayRoundTripAndLength) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  // a = new int[p0]; a[p1] = p0; return a[p1] * 10 + a.length.
  LinearCode L = H.makeCode(
      {{LOp::NewArray, static_cast<uint8_t>(ValueType::Int), 2, 0, 0, 0},
       {LOp::StoreIndexed, 0, 0, 2, 1, 0},
       {LOp::LoadIndexed, 0, 3, 2, 1, 0},
       {LOp::ConstInt, 0, 4, 0, 0, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Mul), 3, 3, 4, 0},
       {LOp::ArrayLength, 0, 5, 2, 0, 0},
       {LOp::Arith, static_cast<uint8_t>(ArithKind::Add), 3, 3, 5, 0},
       {LOp::Ret, 0, 0, 3, 0, 0}},
      6, 2);
  L.IntPool = {10};
  H.expectTiersAgree(L, {Value::makeInt(5), Value::makeInt(4)}, "array ops");
  H.expectTiersAgree(L, {Value::makeInt(5), Value::makeInt(0)}, "array ops");
}

TEST(NativeOpTest, StaticsRoundTrip) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  LinearCode L = H.makeCode(
      {{LOp::StoreStatic, 0, 0, static_cast<uint32_t>(H.G0), 0, 0},
       {LOp::LoadStatic, 0, 1, static_cast<uint32_t>(H.G0), 0, 0},
       {LOp::Ret, 0, 0, 1, 0, 0}},
      2, 1);
  H.expectTiersAgree(L, {Value::makeInt(314)}, "statics");
}

TEST(NativeOpTest, MonitorPair) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  LinearCode L = H.makeCode(
      {{LOp::NewInstance, 0, 0, static_cast<uint32_t>(H.Base), 0, 0},
       {LOp::MonitorEnter, 0, 0, 0, 0, 0},
       {LOp::MonitorExit, 0, 0, 0, 0, 0},
       {LOp::RetVoid, 0, 0, 0, 0, 0}},
      1, 0);
  H.expectTiersAgree(L, {}, "monitor pair");
}

TEST(NativeOpTest, InstanceOfExactAndSubclass) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  for (uint8_t Exact : {0, 1}) {
    // instanceof over: a Derived instance (r0), null (r1) and an array
    // (r2) against class Base — encodes three results in one int.
    LinearCode L = H.makeCode(
        {{LOp::NewInstance, 0, 0, static_cast<uint32_t>(H.Derived), 0, 0},
         {LOp::ConstNull, 0, 1, 0, 0, 0},
         {LOp::ConstInt, 0, 6, 0, 0, 0},
         {LOp::NewArray, static_cast<uint8_t>(ValueType::Int), 2, 6, 0, 0},
         {LOp::InstanceOf, Exact, 3, 0, static_cast<uint32_t>(H.Base), 0},
         {LOp::InstanceOf, Exact, 4, 1, static_cast<uint32_t>(H.Base), 0},
         {LOp::InstanceOf, Exact, 5, 2, static_cast<uint32_t>(H.Base), 0},
         {LOp::ConstInt, 0, 6, 1, 0, 0},
         {LOp::Arith, static_cast<uint8_t>(ArithKind::Mul), 3, 3, 6, 0},
         {LOp::Arith, static_cast<uint8_t>(ArithKind::Add), 3, 3, 4, 0},
         {LOp::Arith, static_cast<uint8_t>(ArithKind::Mul), 3, 3, 6, 0},
         {LOp::Arith, static_cast<uint8_t>(ArithKind::Add), 3, 3, 5, 0},
         {LOp::Ret, 0, 0, 3, 0, 0}},
        7, 0);
    L.IntPool = {2, 10};
    H.expectTiersAgree(L, {}, Exact ? "instanceof exact" : "instanceof sub");
  }
}

TEST(NativeOpTest, InvokeThroughTheCallHandler) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  LinearCode L = H.makeCode({{LOp::Invoke, 0, 1, 0, 0, 0},
                             {LOp::Ret, 0, 0, 1, 0, 0}},
                            2, 1);
  L.Calls = {{H.Neg, CallKind::Static, 0, 1}};
  L.CallArgRegs = {0};
  L.HasEffects = true;
  H.expectTiersAgree(L, {Value::makeInt(19)}, "invoke static");
}

TEST(NativeOpTest, MaterializeCyclicPairWithLock) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  // Commit of two objects referencing each other (a.f1 = b, b.f1 = a),
  // b carrying one elided lock — the Section 5.5 shape through the
  // shared runMaterialize helper from native code.
  LinearCode L = H.makeCode({{LOp::ConstInt, 0, 1, 0, 0, 0},
                             {LOp::Materialize, 0, 0, 0, 0, 0},
                             {LOp::Ret, 0, 0, 2, 0, 0}},
                            3, 1);
  L.IntPool = {9};
  L.Slots = {{LSlotRef::Reg, 0},
             {LSlotRef::Virtual, 1},
             {LSlotRef::Reg, 1},
             {LSlotRef::Virtual, 0}};
  L.Objects = {{H.Base, false, ValueType::Void, 0, 0, 2},
               {H.Base, false, ValueType::Void, 1, 2, 2}};
  L.Projections = {{0, 2}};
  L.Mats = {{0, 2, 0, 1}};
  L.HasEffects = true;

  for (int Tier = 0; Tier != 2; ++Tier) {
    Runtime RT(H.P);
    LOpHarness::Observed O = Tier == 0
                                 ? H.runLinear(RT, L, {Value::makeInt(5)})
                                 : H.runNative(RT, L, {Value::makeInt(5)});
    HeapObject *A = O.Ret.asRef();
    ASSERT_NE(A, nullptr) << "tier " << Tier;
    HeapObject *B = A->slot(H.F1).asRef();
    ASSERT_NE(B, nullptr) << "tier " << Tier;
    EXPECT_EQ(A->slot(H.F0), Value::makeInt(5)) << "tier " << Tier;
    EXPECT_EQ(B->slot(H.F0), Value::makeInt(9)) << "tier " << Tier;
    EXPECT_EQ(B->slot(H.F1).asRef(), A) << "tier " << Tier;
    EXPECT_EQ(B->lockCount(), 1) << "tier " << Tier;
    EXPECT_EQ(O.Allocs, 2u) << "tier " << Tier;
    EXPECT_EQ(O.MonitorOps, 1u) << "tier " << Tier;
  }
}

TEST(NativeOpTest, DeoptRequestsAreBitForBitEquivalent) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  // Two frames, two virtual objects (one referencing the other, one
  // with an elided lock), a dead slot reconstructing as Int(0): both
  // tiers funnel through the shared runDeopt, so the requests must be
  // structurally identical.
  LinearCode L = H.makeCode({{LOp::ConstInt, 0, 1, 0, 0, 0},
                             {LOp::Deopt, 0, 0, 0, 0, 0}},
                            2, 1);
  L.IntPool = {40};
  L.Slots = {// VO 0: {p0, VO 1}; VO 1: {const 2 — via reg? use Dead +
             // reg refs}
             {LSlotRef::Reg, 0},
             {LSlotRef::Virtual, 1},
             {LSlotRef::Reg, 1},
             {LSlotRef::Dead, 0},
             // inner frame locals: [VO 0, dead]
             {LSlotRef::Virtual, 0},
             {LSlotRef::Dead, 0},
             // outer frame: local [p0], stack [const 40 in r1]
             {LSlotRef::Reg, 0},
             {LSlotRef::Reg, 1}};
  L.Objects = {{H.Base, false, ValueType::Void, 0, 0, 2},
               {H.Base, false, ValueType::Void, 1, 2, 2}};
  L.Frames = {{/*Method=*/1, /*Bci=*/2, /*Reexecute=*/true, 4, 2, 0, 0},
              {/*Method=*/0, /*Bci=*/4, /*Reexecute=*/false, 6, 1, 7, 1}};
  L.Deopts = {{DeoptReason::TypeGuardFailed, NoSpeculationId, 0, 2, 0, 2}};
  L.HasEffects = true;

  for (int Tier = 0; Tier != 2; ++Tier) {
    Runtime RT(H.P);
    LOpHarness::Observed O = Tier == 0
                                 ? H.runLinear(RT, L, {Value::makeInt(3)})
                                 : H.runNative(RT, L, {Value::makeInt(3)});
    EXPECT_EQ(O.Ret, H.DeoptResult) << "tier " << Tier;
    ASSERT_EQ(H.DeoptReqs.size(), 1u) << "tier " << Tier;
    const DeoptRequest &Req = H.DeoptReqs[0];
    EXPECT_EQ(Req.Root, 0) << "tier " << Tier;
    EXPECT_EQ(Req.Reason, DeoptReason::TypeGuardFailed) << "tier " << Tier;
    ASSERT_EQ(Req.Frames.size(), 2u) << "tier " << Tier;

    const ResumeFrame &In = Req.Frames[0];
    EXPECT_EQ(In.Method, 1) << "tier " << Tier;
    EXPECT_EQ(In.Bci, 2) << "tier " << Tier;
    EXPECT_TRUE(In.Reexecute) << "tier " << Tier;
    ASSERT_EQ(In.Locals.size(), 2u) << "tier " << Tier;
    HeapObject *A = In.Locals[0].asRef();
    ASSERT_NE(A, nullptr) << "tier " << Tier;
    EXPECT_EQ(A->slot(H.F0), Value::makeInt(3)) << "tier " << Tier;
    HeapObject *B = A->slot(H.F1).asRef();
    ASSERT_NE(B, nullptr) << "tier " << Tier;
    EXPECT_EQ(B->slot(H.F0), Value::makeInt(40)) << "tier " << Tier;
    EXPECT_EQ(B->slot(H.F1), Value::makeInt(0)) << "tier " << Tier;
    EXPECT_EQ(B->lockCount(), 1) << "tier " << Tier;
    EXPECT_EQ(In.Locals[1], Value::makeInt(0)) << "tier " << Tier;

    const ResumeFrame &Out = Req.Frames[1];
    EXPECT_EQ(Out.Method, 0) << "tier " << Tier;
    EXPECT_EQ(Out.Bci, 4) << "tier " << Tier;
    EXPECT_FALSE(Out.Reexecute) << "tier " << Tier;
    ASSERT_EQ(Out.Stack.size(), 1u) << "tier " << Tier;
    EXPECT_EQ(Out.Stack[0], Value::makeInt(40)) << "tier " << Tier;

    EXPECT_EQ(O.Allocs, 2u) << "tier " << Tier;
    EXPECT_EQ(O.Deopts, 1u) << "tier " << Tier;
    EXPECT_EQ(O.MonitorOps, 1u) << "tier " << Tier;
  }
}

using NativeTrapDeathTest = ::testing::Test;

TEST(NativeTrapDeathTest, NullFieldLoadTraps) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  LinearCode L = H.makeCode(
      {{LOp::ConstNull, 0, 0, 0, 0, 0},
       {LOp::LoadField, 0, 1, 0, static_cast<uint32_t>(H.F0), 0},
       {LOp::Ret, 0, 0, 1, 0, 0}},
      2, 0);
  Runtime RT(H.P);
  EXPECT_DEATH(H.runNative(RT, L, {}), "null dereference");
}

TEST(NativeTrapDeathTest, OutOfBoundsLoadTraps) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  // Both a too-large and a negative index must take the unsigned-compare
  // guard in the template.
  for (int64_t Bad : {4L, -1L}) {
    LOpHarness H2;
    LinearCode L = H2.makeCode(
        {{LOp::ConstInt, 0, 1, 0, 0, 0},
         {LOp::NewArray, static_cast<uint8_t>(ValueType::Int), 2, 1, 0, 0},
         {LOp::LoadIndexed, 0, 3, 2, 0, 0},
         {LOp::Ret, 0, 0, 3, 0, 0}},
        4, 1);
    L.IntPool = {4};
    Runtime RT(H2.P);
    EXPECT_DEATH(H2.runNative(RT, L, {Value::makeInt(Bad)}),
                 "array index out of bounds");
  }
}

TEST(NativeTrapDeathTest, TrapOpcodeIsFatal) {
  SKIP_WITHOUT_NATIVE();
  LOpHarness H;
  LinearCode L = H.makeCode({{LOp::Trap, 0, 0, 0, 0, 0}}, 0, 0);
  Runtime RT(H.P);
  EXPECT_DEATH(H.runNative(RT, L, {}), "unreachable code executed");
}

//===----------------------------------------------------------------------===//
// Whole-VM: installation, fallback switch, and cross-tier agreement
//===----------------------------------------------------------------------===//

struct VmRun {
  int64_t Checksum = 0;
  uint64_t Allocs = 0;
  uint64_t Bytes = 0;
  uint64_t Deopts = 0;
  uint64_t MonitorOps = 0;
};

VmRun runCacheWorkload(ExecMode Mode, bool EnableNative = true,
                       bool StressGc = false) {
  CacheProgram CP = makeCacheProgram(/*UpdateCacheOnMiss=*/true);
  VMOptions VO;
  VO.CompileThreshold = 4;
  VO.CompilerThreads = 0; // Deterministic install points.
  VO.Compiler.EAMode = EscapeAnalysisMode::Partial;
  VO.Exec = Mode;
  VO.EnableNativeTier = EnableNative;
  VO.Memory.StressGc = StressGc;
  VirtualMachine VM(CP.P, VO);
  VmRun R;
  for (int I = 0; I != 60; ++I) {
    Value V = VM.call(CP.GetValue,
                      {Value::makeInt(I % 5), Value::makeRef(nullptr)});
    R.Checksum += V.asRef() ? V.asRef()->slot(CP.BoxVal).asInt() : -1;
  }
  R.Allocs = VM.runtime().heap().allocationCount();
  R.Bytes = VM.runtime().heap().allocatedBytes();
  R.Deopts = VM.runtime().metrics().Deopts;
  R.MonitorOps = VM.runtime().metrics().MonitorOps;
  return R;
}

TEST(NativeVmTest, CacheWorkloadIdenticalAcrossAllTiers) {
  SKIP_WITHOUT_NATIVE();
  VmRun Linear = runCacheWorkload(ExecMode::Linear);
  VmRun Native = runCacheWorkload(ExecMode::Native);
  EXPECT_EQ(Linear.Checksum, Native.Checksum);
  EXPECT_EQ(Linear.Allocs, Native.Allocs);
  EXPECT_EQ(Linear.Bytes, Native.Bytes);
  EXPECT_EQ(Linear.Deopts, Native.Deopts);
  EXPECT_EQ(Linear.MonitorOps, Native.MonitorOps);
}

TEST(NativeVmTest, NativeModeInstallsNativeCode) {
  SKIP_WITHOUT_NATIVE();
  MathProgram MP = makeMathProgram();
  VMOptions VO;
  VO.CompileThreshold = 4;
  VO.CompilerThreads = 0;
  VO.Exec = ExecMode::Native;
  VirtualMachine VM(MP.P, VO);
  for (int I = 0; I != 20; ++I)
    VM.call(MP.SumTo, {Value::makeInt(I)});
  EXPECT_NE(VM.compiledLinear(MP.SumTo), nullptr);
  const NativeCode *N = VM.compiledNative(MP.SumTo);
  ASSERT_NE(N, nullptr);
  EXPECT_GT(N->codeSize(), 0u);
  EXPECT_GT(VM.jitMetrics().NativeMethods, 0u);
  EXPECT_GT(VM.jitMetrics().NativeEmitNanos, 0u);
  EXPECT_EQ(VM.jitMetrics().NativeFallbacks, 0u);
  EXPECT_GT(VM.codeCache().methods(), 0u);
  EXPECT_GT(VM.codeCache().codeBytes(), 0u);
  // The compile log carries the per-method emit time and size.
  std::vector<CompileLog::Record> Recs =
      VM.compileLog().recordsFor(MP.SumTo);
  ASSERT_FALSE(Recs.empty());
  EXPECT_GT(Recs.back().NativeBytes, 0u);
  EXPECT_GT(Recs.back().NativeEmitNanos, 0u);
}

TEST(NativeVmTest, DisablingTheTierFallsBackToLinear) {
  SKIP_WITHOUT_NATIVE();
  MathProgram MP = makeMathProgram();
  VMOptions VO;
  VO.CompileThreshold = 4;
  VO.CompilerThreads = 0;
  VO.Exec = ExecMode::Native;
  VO.EnableNativeTier = false;
  VirtualMachine VM(MP.P, VO);
  int64_t Sum = 0;
  for (int I = 0; I != 20; ++I)
    Sum += VM.call(MP.SumTo, {Value::makeInt(I)}).asInt();
  EXPECT_EQ(Sum, 1330); // sum of first 20 triangular numbers
  EXPECT_NE(VM.compiledLinear(MP.SumTo), nullptr);
  EXPECT_EQ(VM.compiledNative(MP.SumTo), nullptr);
  EXPECT_EQ(VM.jitMetrics().NativeMethods, 0u);
  EXPECT_EQ(VM.codeCache().methods(), 0u);
}

TEST(NativeVmTest, DifferentialModeCrossChecksNativeTier) {
  SKIP_WITHOUT_NATIVE();
  // Differential mode fatals on any linear-vs-native divergence, so
  // surviving the deopting cache workload is the assertion.
  VmRun Diff = runCacheWorkload(ExecMode::Differential);
  VmRun Linear = runCacheWorkload(ExecMode::Linear);
  EXPECT_EQ(Diff.Checksum, Linear.Checksum);
}

TEST(NativeVmTest, DifferentialSurvivesGcStress) {
  SKIP_WITHOUT_NATIVE();
  // A collection at every allocation point moves objects while native
  // frames are live; the root providers must keep every frame current.
  VmRun Diff = runCacheWorkload(ExecMode::Differential, true, true);
  VmRun Linear = runCacheWorkload(ExecMode::Linear, true, false);
  EXPECT_EQ(Diff.Checksum, Linear.Checksum);
}

TEST(NativeVmTest, DeoptingWorkloadIdenticalAcrossTiers) {
  SKIP_WITHOUT_NATIVE();
  // Devirtualized dispatch the input distribution later betrays: the
  // native tier must deopt at the same points and heal the same way.
  VmRun Runs[2];
  int Idx = 0;
  for (ExecMode Mode : {ExecMode::Linear, ExecMode::Native}) {
    ShapesProgram SP = makeShapesProgram();
    VMOptions VO;
    VO.CompileThreshold = 6;
    VO.CompilerThreads = 0;
    VO.Compiler.DevirtMinProfile = 4;
    VO.Compiler.EAMode = EscapeAnalysisMode::Partial;
    VO.Exec = Mode;
    VirtualMachine VM(SP.P, VO);
    VmRun &R = Runs[Idx++];
    for (int I = 0; I != 20; ++I) {
      Value Shape = VM.call(SP.MakeCircle, {Value::makeInt(I % 7)});
      R.Checksum += VM.call(SP.AreaOf, {Shape}).asInt();
    }
    for (int I = 0; I != 20; ++I) {
      Value Shape = I % 2 ? VM.call(SP.MakeSquare, {Value::makeInt(I)})
                          : VM.call(SP.MakeCircle, {Value::makeInt(I)});
      R.Checksum += VM.call(SP.AreaOf, {Shape}).asInt();
    }
    R.Allocs = VM.runtime().heap().allocationCount();
    R.Deopts = VM.runtime().metrics().Deopts;
  }
  EXPECT_EQ(Runs[0].Checksum, Runs[1].Checksum);
  EXPECT_EQ(Runs[0].Allocs, Runs[1].Allocs);
  EXPECT_EQ(Runs[0].Deopts, Runs[1].Deopts);
}

//===----------------------------------------------------------------------===//
// Every benchmark row, whole-VM, under the three-way differential
//===----------------------------------------------------------------------===//

const workloads::BenchmarkSet &sharedSet() {
  static const workloads::BenchmarkSet Set = workloads::buildBenchmarkSet();
  return Set;
}

class RowNativeEquivalenceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RowNativeEquivalenceTest, AllTiersAgreeUnderDifferential) {
  SKIP_WITHOUT_NATIVE();
  const workloads::BenchmarkSet &Set = sharedSet();
  const workloads::BenchmarkRow &Row = Set.Rows[GetParam()];
  const int64_t Scale = 1500;

  // Leg 1: plain native. Leg 2: differential — every compiled call is
  // cross-checked linear vs native (and graph for pure code) inside the
  // VM, which fatals on divergence. The checksums tie the legs together.
  int64_t Checksums[2];
  int Idx = 0;
  for (ExecMode Mode : {ExecMode::Native, ExecMode::Differential}) {
    VMOptions VO;
    VO.CompileThreshold = 100;
    VO.CompilerThreads = 0;
    VO.Compiler.EAMode = EscapeAnalysisMode::Partial;
    VO.Exec = Mode;
    VirtualMachine VM(Set.WP.P, VO);
    VM.call(Set.WP.Setup, {});
    std::vector<Value> Args{Value::makeInt(Scale)};
    int64_t Sum = 0;
    for (int I = 0; I != 5; ++I)
      Sum += VM.call(Row.Driver, Args).asInt();
    Checksums[Idx++] = Sum;
    if (Mode == ExecMode::Native) {
      EXPECT_GT(VM.jitMetrics().NativeMethods, 0u) << Row.Name;
    }
  }
  EXPECT_EQ(Checksums[0], Checksums[1]) << Row.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, RowNativeEquivalenceTest, ::testing::Range(0u, 27u),
    [](const ::testing::TestParamInfo<unsigned> &Info) {
      return sharedSet().Rows[Info.param].Name;
    });

} // namespace
