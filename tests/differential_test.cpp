//===- differential_test.cpp - Randomized interpreter-vs-JIT testing -----------===//
//
// Property-based safety net: generated programs (structured but random:
// arithmetic, branches, loops, objects with stores/loads, rare escapes)
// must produce identical results when interpreted and when compiled
// under every escape-analysis mode, and partial escape analysis must
// never increase the dynamic allocation count.
//
//===----------------------------------------------------------------------===//

#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <random>

using namespace jvm;

namespace {

/// Deterministic generator of verified random methods
/// `f(int, int) -> int`, seeded per test case.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : Rng(Seed) {}

  struct Result {
    Program P;
    MethodId M = NoMethod;
  };

  Result generate() {
    Result R;
    Cls = R.P.addClass("T");
    ValF = R.P.addField(Cls, "val", ValueType::Int);
    AuxF = R.P.addField(Cls, "aux", ValueType::Int);
    Sink = R.P.addStatic("sink", ValueType::Ref);
    R.M = R.P.addMethod("f", NoClass, {ValueType::Int, ValueType::Int},
                        ValueType::Int);
    CodeBuilder C(R.P, R.M);
    Acc = C.newLocal();
    Obj = C.newLocal();
    C.constI(0).store(Acc);
    // Always have one live object local so object statements can use it.
    C.newObj(Cls).store(Obj);
    C.load(Obj).load(0).putField(Cls, ValF);
    unsigned NumStatements = 3 + Rng() % 5;
    for (unsigned I = 0; I != NumStatements; ++I)
      emitStatement(C, /*Depth=*/0);
    C.load(Acc).load(Obj).getField(Cls, ValF).add().retInt();
    C.finish();
    verifyProgramOrDie(R.P);
    return R;
  }

private:
  /// acc = acc OP <expr>
  void emitArith(CodeBuilder &C) {
    C.load(Acc);
    switch (Rng() % 4) {
    case 0:
      C.load(0);
      break;
    case 1:
      C.load(1);
      break;
    case 2:
      C.constI(static_cast<int32_t>(Rng() % 1000) - 500);
      break;
    case 3:
      C.load(Obj).getField(Cls, ValF);
      break;
    }
    switch (Rng() % 5) {
    case 0:
      C.add();
      break;
    case 1:
      C.sub();
      break;
    case 2:
      C.mul();
      break;
    case 3:
      C.bitXor();
      break;
    case 4:
      C.constI(1).bitOr().rem(); // acc % (x|1): never a division by 0.
      break;
    }
    C.store(Acc);
  }

  void emitObjectOp(CodeBuilder &C) {
    switch (Rng() % 4) {
    case 0: // Fresh object.
      C.newObj(Cls).store(Obj);
      C.load(Obj).load(Acc).putField(Cls, ValF);
      break;
    case 1: // Store into the current object.
      C.load(Obj).load(Acc).putField(Cls, AuxF);
      break;
    case 2: // Read back.
      C.load(Obj).getField(Cls, AuxF).load(Acc).add().store(Acc);
      break;
    case 3: // Rare escape.
      C.load(Obj).putStatic(Sink);
      break;
    }
  }

  void emitBranch(CodeBuilder &C, unsigned Depth) {
    Label Else = C.newLabel(), Done = C.newLabel();
    C.load(Acc).constI(static_cast<int32_t>(Rng() % 64)).ifLt(Else);
    emitStatement(C, Depth + 1);
    C.gotoL(Done);
    C.bind(Else);
    emitStatement(C, Depth + 1);
    C.bind(Done);
  }

  void emitLoop(CodeBuilder &C, unsigned Depth) {
    unsigned I = C.newLocal();
    Label Head = C.newLabel(), Exit = C.newLabel();
    C.constI(0).store(I);
    C.bind(Head);
    C.load(I).constI(static_cast<int32_t>(2 + Rng() % 6)).ifGe(Exit);
    emitStatement(C, Depth + 1);
    C.load(I).constI(1).add().store(I);
    C.gotoL(Head);
    C.bind(Exit);
  }

  void emitStatement(CodeBuilder &C, unsigned Depth) {
    unsigned Choice = Rng() % 10;
    if (Depth >= 3 || Choice < 4)
      return emitArith(C);
    if (Choice < 7)
      return emitObjectOp(C);
    if (Choice < 9)
      return emitBranch(C, Depth);
    emitLoop(C, Depth);
  }

  std::mt19937_64 Rng;
  ClassId Cls = NoClass;
  FieldIndex ValF = -1, AuxF = -1;
  StaticIndex Sink = -1;
  unsigned Acc = 0, Obj = 0;
};

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, InterpreterAndAllJitModesAgree) {
  ProgramGenerator Gen(GetParam());
  ProgramGenerator::Result R = Gen.generate();

  const std::vector<std::pair<int64_t, int64_t>> Inputs = {
      {0, 0}, {1, 2}, {-5, 7}, {100, -100}, {64, 63}, {-1, -1}};

  // Reference: pure interpretation.
  std::vector<int64_t> Expected;
  uint64_t InterpAllocs;
  {
    VMOptions VO;
    VO.EnableJit = false;
    VirtualMachine VM(R.P, VO);
    for (auto [X, Y] : Inputs)
      Expected.push_back(
          VM.call(R.M, {Value::makeInt(X), Value::makeInt(Y)}).asInt());
    InterpAllocs = VM.runtime().heap().allocationCount();
  }

  uint64_t PeaAllocs = 0, NoneAllocs = 0;
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::FlowInsensitive,
        EscapeAnalysisMode::Partial}) {
    VMOptions VO;
    VO.CompileThreshold = 2; // Compile almost immediately.
    VO.CompilerThreads = 0; // Deterministic: code installed at threshold.
    VO.Compiler.PruneMinProfile = 4;
    VO.Compiler.DevirtMinProfile = 4;
    VO.Compiler.EAMode = Mode;
    VirtualMachine VM(R.P, VO);
    // Warm with the first inputs, then check everything (later inputs
    // can hit pruned branches and deoptimize; results must still match).
    for (int W = 0; W != 4; ++W)
      VM.call(R.M, {Value::makeInt(Inputs[0].first),
                    Value::makeInt(Inputs[0].second)});
    VM.runtime().resetMetrics();
    for (unsigned I = 0; I != Inputs.size(); ++I) {
      int64_t Got = VM.call(R.M, {Value::makeInt(Inputs[I].first),
                                  Value::makeInt(Inputs[I].second)})
                        .asInt();
      ASSERT_EQ(Got, Expected[I])
          << "seed=" << GetParam() << " input#" << I
          << " mode=" << escapeAnalysisModeName(Mode);
    }
    if (Mode == EscapeAnalysisMode::None)
      NoneAllocs = VM.runtime().heap().allocationCount();
    if (Mode == EscapeAnalysisMode::Partial)
      PeaAllocs = VM.runtime().heap().allocationCount();
  }
  EXPECT_LE(PeaAllocs, NoneAllocs) << "seed=" << GetParam();
  (void)InterpAllocs;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 151));

} // namespace
