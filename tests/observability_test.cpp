//===- observability_test.cpp - Tracer, metrics registry, compile log ----------===//
//
// Covers the observability subsystem end to end: metric registration and
// kind uniqueness, log2 histogram bucketing edge cases, trace recording
// with matched B/E span pairs across threads, Chrome-JSON export
// well-formedness, ring-overflow drop accounting, the per-method
// compilation log (including a forced deoptimization with virtual-object
// rematerialization), and VirtualMachine::resetMetrics.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"
#include "observability/CompileLog.h"
#include "observability/Metrics.h"
#include "observability/Trace.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace jvm;
using namespace jvm::testprogs;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, literals). Returns true iff the whole input is one valid
// JSON value. Enough to validate the tracer's generated output without
// a JSON dependency; scripts/check_trace.py does full schema linting.
//===----------------------------------------------------------------------===//

class JsonScanner {
public:
  explicit JsonScanner(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  const std::string &S;
  size_t Pos = 0;
};

/// Per-tid LIFO matching of 'B'/'E' events: every end must close the
/// innermost open begin of the same thread, and no span stays open.
void expectSpansMatched(const std::vector<TraceEvent> &Events) {
  std::map<uint32_t, std::vector<const char *>> Open;
  for (const TraceEvent &E : Events) {
    if (E.Ph == 'B') {
      Open[E.Tid].push_back(E.Name);
    } else if (E.Ph == 'E') {
      auto &Stack = Open[E.Tid];
      ASSERT_FALSE(Stack.empty())
          << "'E' event '" << E.Name << "' with no open span on tid "
          << E.Tid;
      EXPECT_STREQ(Stack.back(), E.Name) << "mismatched span on tid " << E.Tid;
      Stack.pop_back();
    }
  }
  for (const auto &[Tid, Stack] : Open)
    EXPECT_TRUE(Stack.empty()) << "unclosed span on tid " << Tid;
}

/// Every test runs against the process-global tracer: start from a clean,
/// disabled state and leave it that way.
class ObservabilityTest : public ::testing::Test {
protected:
  void SetUp() override {
    Tracer::get().setEnabled(false);
    Tracer::get().clear();
    Tracer::get().setCategories(TraceDefaultCategories);
  }
  void TearDown() override {
    Tracer::get().setEnabled(false);
    Tracer::get().clear();
    Tracer::get().setCategories(TraceDefaultCategories);
  }
};

VMOptions fastJit(unsigned CompilerThreads = 0) {
  VMOptions O;
  O.CompileThreshold = 5;
  O.Compiler.EAMode = EscapeAnalysisMode::Partial;
  O.Compiler.PruneMinProfile = 5;
  O.Compiler.DevirtMinProfile = 5;
  O.CompilerThreads = CompilerThreads;
  return O;
}

/// One block of the paper's speculation pattern:
///   t = new T; t.val = x; if (x < 0) global = t; return x + t.val;
/// Warmed with x >= 0 the store is branch-pruned into a deopt and t is
/// scalar-replaced — calling with x < 0 then deoptimizes with one
/// virtual object to rematerialize.
struct DeoptProgram {
  Program P;
  MethodId M = NoMethod;
};

DeoptProgram makeDeoptProgram() {
  DeoptProgram R;
  ClassId T = R.P.addClass("T");
  FieldIndex Val = R.P.addField(T, "val", ValueType::Int);
  StaticIndex Global = R.P.addStatic("global", ValueType::Ref);
  R.M = R.P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
  CodeBuilder C(R.P, R.M);
  unsigned X = 0;
  unsigned Tl = C.newLocal();
  Label Skip = C.newLabel();
  C.newObj(T).store(Tl);
  C.load(Tl).load(X).putField(T, Val);
  C.load(X).constI(0).ifGe(Skip);
  C.load(Tl).putStatic(Global);
  C.bind(Skip);
  C.load(X).load(Tl).getField(T, Val).add().retInt();
  C.finish();
  verifyProgramOrDie(R.P);
  return R;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, CounterGetOrCreateReturnsStableIdentity) {
  MetricsRegistry R;
  MetricCounter &A = R.counter("vm.widgets");
  MetricCounter &B = R.counter("vm.widgets");
  EXPECT_EQ(&A, &B);
  A.add(3);
  B.add();
  EXPECT_EQ(A.value(), 4u);
  EXPECT_TRUE(R.has("vm.widgets"));
  EXPECT_FALSE(R.has("vm.gadgets"));
  EXPECT_EQ(R.size(), 1u);
}

TEST(MetricsRegistryTest, HistogramGetOrCreateReturnsStableIdentity) {
  MetricsRegistry R;
  MetricHistogram &A = R.histogram("vm.latency");
  MetricHistogram &B = R.histogram("vm.latency");
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(R.size(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchDies) {
  MetricsRegistry R;
  R.counter("vm.thing");
  EXPECT_DEATH(R.histogram("vm.thing"), "different kind");
  MetricsRegistry R2;
  R2.gauge("vm.g", [] { return 1u; });
  EXPECT_DEATH(R2.gauge("vm.g", [] { return 2u; }), "duplicate gauge");
}

TEST(MetricsRegistryTest, DumpTextOneRowPerMetricHistogramsExpand) {
  MetricsRegistry R;
  R.counter("a.count").add(7);
  R.gauge("b.gauge", [] { return uint64_t(42); });
  R.histogram("c.hist").record(100);
  std::string Text = R.dumpText();
  EXPECT_NE(Text.find("a.count"), std::string::npos);
  EXPECT_NE(Text.find("42"), std::string::npos);
  EXPECT_NE(Text.find("c.hist.count"), std::string::npos);
  EXPECT_NE(Text.find("c.hist.mean"), std::string::npos);
  EXPECT_NE(Text.find("c.hist.max"), std::string::npos);
  EXPECT_NE(Text.find("c.hist.p90"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpJsonIsValidAndProvidersEmit) {
  MetricsRegistry R;
  R.counter("x").add(1);
  R.provider([](const std::function<void(const std::string &, uint64_t)> &E) {
    E("dynamic.one", 11);
    E("dynamic.two", 22);
  });
  std::string Json = R.dumpJson();
  JsonScanner Scan(Json);
  EXPECT_TRUE(Scan.valid()) << Json;
  EXPECT_NE(Json.find("\"dynamic.one\": 11"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"dynamic.two\": 22"), std::string::npos) << Json;
}

TEST(MetricsRegistryTest, ResetZeroesOwnedMetricsOnly) {
  MetricsRegistry R;
  R.counter("c").add(5);
  R.histogram("h").record(9);
  uint64_t Live = 17;
  R.gauge("g", [&Live] { return Live; });
  R.reset();
  EXPECT_EQ(R.counter("c").value(), 0u);
  EXPECT_EQ(R.histogram("h").count(), 0u);
  EXPECT_EQ(R.histogram("h").sum(), 0u);
  EXPECT_EQ(R.histogram("h").max(), 0u);
  // Gauges read live sources; reset must not touch them.
  EXPECT_NE(R.dumpText().find("17"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// MetricHistogram bucketing
//===----------------------------------------------------------------------===//

TEST(MetricHistogramTest, BucketEdgeCases) {
  EXPECT_EQ(MetricHistogram::bucketFor(0), 0u);
  EXPECT_EQ(MetricHistogram::bucketFor(1), 1u);
  EXPECT_EQ(MetricHistogram::bucketFor(2), 2u);
  EXPECT_EQ(MetricHistogram::bucketFor(3), 2u);
  EXPECT_EQ(MetricHistogram::bucketFor(4), 3u);
  EXPECT_EQ(MetricHistogram::bucketFor(7), 3u);
  EXPECT_EQ(MetricHistogram::bucketFor(8), 4u);
  EXPECT_EQ(MetricHistogram::bucketFor((uint64_t(1) << 63) - 1), 63u);
  EXPECT_EQ(MetricHistogram::bucketFor(uint64_t(1) << 63), 64u);
  EXPECT_EQ(MetricHistogram::bucketFor(UINT64_MAX), 64u);

  EXPECT_EQ(MetricHistogram::bucketLowerBound(0), 0u);
  EXPECT_EQ(MetricHistogram::bucketLowerBound(1), 1u);
  EXPECT_EQ(MetricHistogram::bucketLowerBound(2), 2u);
  EXPECT_EQ(MetricHistogram::bucketLowerBound(3), 4u);
  EXPECT_EQ(MetricHistogram::bucketLowerBound(64), uint64_t(1) << 63);
}

TEST(MetricHistogramTest, RecordAccumulatesAndBucketsCorrectly) {
  MetricHistogram H;
  H.record(0);
  H.record(1);
  H.record(2);
  H.record(3);
  H.record(UINT64_MAX);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.max(), UINT64_MAX);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 2u);
  EXPECT_EQ(H.bucketCount(64), 1u);
}

TEST(MetricHistogramTest, PercentileUpperBound) {
  MetricHistogram H;
  EXPECT_EQ(H.percentileUpperBound(0.9), 0u); // empty
  for (int I = 0; I != 10; ++I)
    H.record(8); // bucket 4: [8, 16)
  EXPECT_EQ(H.percentileUpperBound(0.9), 16u);
  EXPECT_EQ(H.mean(), 8u);
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, DisabledFastPathRecordsNothing) {
  ASSERT_FALSE(traceWants(TraceCompile));
  {
    TraceScope Span(TraceCompile, "should-not-record");
    if (traceWants(TraceDeopt))
      Tracer::get().instant(TraceDeopt, "nope");
  }
  EXPECT_TRUE(Tracer::get().snapshot().empty());
}

TEST_F(ObservabilityTest, CategoryMaskFiltersEvents) {
  Tracer::get().setCategories(TraceCompile);
  Tracer::get().setEnabled(true);
  EXPECT_TRUE(traceWants(TraceCompile));
  EXPECT_FALSE(traceWants(TraceMonitor));
  EXPECT_FALSE(traceWants(TracePea));
}

TEST_F(ObservabilityTest, SpansAndInstantsRoundTrip) {
  Tracer::get().setEnabled(true);
  {
    TraceScope Outer(TraceCompile, "outer");
    {
      TraceScope Inner(TraceCompile, "inner");
      Tracer::get().instant(TraceDeopt, "blip", "method", 7, "rematerialized",
                            2, "reason", "branch-never-taken");
    }
  }
  Tracer::get().setEnabled(false);
  std::vector<TraceEvent> Events = Tracer::get().snapshot();
  ASSERT_EQ(Events.size(), 5u);
  expectSpansMatched(Events);
  // Record order on one thread: B outer, B inner, I, E inner, E outer.
  EXPECT_EQ(Events[0].Ph, 'B');
  EXPECT_STREQ(Events[0].Name, "outer");
  EXPECT_EQ(Events[2].Ph, 'I');
  EXPECT_EQ(Events[2].Arg0, 7);
  EXPECT_EQ(Events[2].Arg1, 2);
  EXPECT_STREQ(Events[2].StrArg, "branch-never-taken");
  // Timestamps are monotone per thread.
  for (size_t I = 1; I != Events.size(); ++I)
    EXPECT_GE(Events[I].TimeNanos, Events[I - 1].TimeNanos);
}

TEST_F(ObservabilityTest, SpanCapturesEnabledAtConstruction) {
  Tracer::get().setEnabled(true);
  {
    TraceScope Span(TraceCompile, "toggled");
    // Disabling mid-span must not orphan the 'B'.
    Tracer::get().setEnabled(false);
  }
  std::vector<TraceEvent> Events = Tracer::get().snapshot();
  ASSERT_EQ(Events.size(), 2u);
  expectSpansMatched(Events);
}

TEST_F(ObservabilityTest, SpansMatchAcrossConcurrentThreads) {
  Tracer::get().setEnabled(true);
  auto Work = [] {
    for (int I = 0; I != 50; ++I) {
      TraceScope Outer(TraceCompile, "outer");
      TraceScope Inner(TraceCompile, "inner");
      Tracer::get().instant(TraceCode, "tick");
    }
  };
  std::thread A(Work), B(Work);
  A.join();
  B.join();
  Tracer::get().setEnabled(false);
  std::vector<TraceEvent> Events = Tracer::get().snapshot();
  expectSpansMatched(Events);
  std::set<uint32_t> Tids;
  for (const TraceEvent &E : Events)
    Tids.insert(E.Tid);
  EXPECT_GE(Tids.size(), 2u);
}

TEST_F(ObservabilityTest, ExportJsonIsWellFormed) {
  Tracer::get().setEnabled(true);
  Tracer::get().setCurrentThreadName("test-mutator");
  {
    TraceScope Span(TraceCompile, "compile");
    Tracer::get().instant(TraceDeopt, "deopt", "method", 1, "rematerialized",
                          3, "reason", "type-guard \"quoted\"");
  }
  Tracer::get().setEnabled(false);
  std::string Json = Tracer::get().exportJson();
  JsonScanner Scan(Json);
  EXPECT_TRUE(Scan.valid()) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"droppedEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"highWater\""), std::string::npos);
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos);
}

TEST_F(ObservabilityTest, ClearFloorsEventsAndDrops) {
  Tracer::get().setEnabled(true);
  Tracer::get().instant(TraceCompile, "before");
  Tracer::get().clear();
  Tracer::get().instant(TraceCompile, "after");
  Tracer::get().setEnabled(false);
  std::vector<TraceEvent> Events = Tracer::get().snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Name, "after");
}

//===----------------------------------------------------------------------===//
// VM integration
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, VmRegistersCoreMetrics) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, fastJit());
  MetricsRegistry &R = VM.metricsRegistry();
  for (const char *Name :
       {"runtime.interpreted_ops", "runtime.compiled_calls",
        "runtime.monitor_ops", "runtime.deopts", "heap.allocations",
        "heap.allocated_bytes", "jit.compilations", "jit.invalidations",
        "jit.compiles_discarded", "jit.mutator_stall_nanos",
        "pea.virtualized_allocations", "pea.materialize_sites",
        "trace.dropped_events", "trace.ring_high_water",
        "jit.enqueue_to_install_latency_ns", "jit.mutator_stall_latency_ns"})
    EXPECT_TRUE(R.has(Name)) << Name;

  for (int I = 0; I != 10; ++I)
    VM.call(MP.SumTo, {Value::makeInt(10)});
  VM.waitForCompilerIdle();
  std::string Json = VM.dumpMetricsJson();
  JsonScanner Scan(Json);
  EXPECT_TRUE(Scan.valid()) << Json;
  // The phase-times provider emits per-phase rows once something compiled.
  EXPECT_NE(Json.find("jit.phase.build.nanos"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"jit.compilations\": 1"), std::string::npos) << Json;
}

TEST_F(ObservabilityTest, VmEmitsCompileInstallTierAndDeoptEvents) {
  Tracer::get().setCategories(TraceCompile | TraceCode | TraceTier |
                              TraceDeopt | TracePea | TraceMonitor);
  Tracer::get().setEnabled(true);
  DeoptProgram DP = makeDeoptProgram();
  VirtualMachine VM(DP.P, fastJit());
  for (int I = 1; I <= 10; ++I)
    EXPECT_EQ(VM.call(DP.M, {Value::makeInt(I)}).asInt(), 2 * I);
  ASSERT_NE(VM.compiledGraph(DP.M), nullptr);
  // The pruned branch fires: one deopt, one virtual object rebuilt.
  EXPECT_EQ(VM.call(DP.M, {Value::makeInt(-4)}).asInt(), -8);
  EXPECT_EQ(VM.runtime().metrics().Deopts, 1u);
  Tracer::get().setEnabled(false);

  std::vector<TraceEvent> Events = Tracer::get().snapshot();
  expectSpansMatched(Events);
  bool SawCompileSpan = false, SawPhaseSpan = false, SawInstall = false,
       SawTier = false, SawDeopt = false;
  for (const TraceEvent &E : Events) {
    if (E.Ph == 'B' && std::string(E.Name) == "compile")
      SawCompileSpan = true;
    if (E.Ph == 'B' && std::string(E.Name) == "build")
      SawPhaseSpan = true;
    if (E.Ph == 'I' && std::string(E.Name) == "install")
      SawInstall = true;
    if (E.Ph == 'I' && std::string(E.Name) == "tier-transition")
      SawTier = true;
    if (E.Ph == 'I' && std::string(E.Name) == "deopt") {
      SawDeopt = true;
      EXPECT_EQ(E.Arg0, static_cast<int64_t>(DP.M));
      EXPECT_STREQ(E.Arg1Name, "rematerialized");
      EXPECT_GE(E.Arg1, 1) << "deopt must carry the rematerialization payload";
      EXPECT_STREQ(E.StrArgName, "reason");
      EXPECT_NE(E.StrArg, nullptr);
    }
  }
  EXPECT_TRUE(SawCompileSpan);
  EXPECT_TRUE(SawPhaseSpan);
  EXPECT_TRUE(SawInstall);
  EXPECT_TRUE(SawTier);
  EXPECT_TRUE(SawDeopt);
}

TEST_F(ObservabilityTest, BrokerWorkersEmitMatchedSpans) {
  Tracer::get().setEnabled(true);
  MathProgram MP = makeMathProgram();
  VMOptions O = fastJit(/*CompilerThreads=*/2);
  {
    VirtualMachine VM(MP.P, O);
    for (int I = 0; I != 20; ++I) {
      VM.call(MP.SumTo, {Value::makeInt(10)});
      VM.call(MP.Abs, {Value::makeInt(I + 1)});
      VM.call(MP.Max, {Value::makeInt(I), Value::makeInt(3)});
      VM.call(MP.Fact, {Value::makeInt(5)});
    }
    VM.waitForCompilerIdle();
  }
  Tracer::get().setEnabled(false);
  std::vector<TraceEvent> Events = Tracer::get().snapshot();
  expectSpansMatched(Events);
  // Compile spans run on broker workers, not the mutator: the worker
  // tids must appear, and the export must stay well-formed.
  std::set<uint32_t> CompileTids;
  for (const TraceEvent &E : Events)
    if (E.Ph == 'B' && std::string(E.Name) == "compile")
      CompileTids.insert(E.Tid);
  EXPECT_GE(CompileTids.size(), 1u);
  std::string Json = Tracer::get().exportJson();
  JsonScanner Scan(Json);
  EXPECT_TRUE(Scan.valid());
  EXPECT_NE(Json.find("compiler-worker"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// CompileLog
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, CompileLogRecordsPhasesAndForcedDeopt) {
  DeoptProgram DP = makeDeoptProgram();
  VirtualMachine VM(DP.P, fastJit());
  for (int I = 1; I <= 10; ++I)
    VM.call(DP.M, {Value::makeInt(I)});
  ASSERT_NE(VM.compiledGraph(DP.M), nullptr);
  EXPECT_EQ(VM.call(DP.M, {Value::makeInt(-1)}).asInt(), -2);

  std::vector<CompileLog::Record> Recs = VM.compileLog().recordsFor(DP.M);
  ASSERT_GE(Recs.size(), 1u);
  const CompileLog::Record &R = Recs.front();
  EXPECT_TRUE(R.Installed);
  EXPECT_GT(R.Hotness, 0u);
  EXPECT_GT(R.TotalNanos, 0u);
  EXPECT_GT(R.FinalNodes, 0u);
  ASSERT_FALSE(R.Phases.empty());
  EXPECT_EQ(R.Phases.front().Name, "build");
  // The build phase populates the empty graph: node count must grow.
  EXPECT_GT(R.Phases.front().NodesAfter, R.Phases.front().NodesBefore);
  bool SawEscape = false;
  for (const CompileLog::PhaseRec &Ph : R.Phases)
    if (Ph.Name == "escape-partial")
      SawEscape = true;
  EXPECT_TRUE(SawEscape);
  EXPECT_GE(R.Escape.VirtualizedAllocations, 1u);

  ASSERT_EQ(R.Deopts.size(), 1u);
  EXPECT_GE(R.Deopts.front().Rematerialized, 1u)
      << "the scalar-replaced T must be rebuilt at the deopt";
  EXPECT_FALSE(R.Deopts.front().Reason.empty());

  std::string Text = VM.compileLog().renderText();
  EXPECT_NE(Text.find("installed"), std::string::npos);
  EXPECT_NE(Text.find("deopt reason="), std::string::npos);
  EXPECT_NE(Text.find("rematerialized="), std::string::npos);
}

TEST_F(ObservabilityTest, CompileLogAttributesRecompiles) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, fastJit());
  VM.call(MP.SumTo, {Value::makeInt(3)});
  VM.compileNow(MP.SumTo);
  VM.invalidate(MP.SumTo);
  VM.compileNow(MP.SumTo);
  std::vector<CompileLog::Record> Recs =
      VM.compileLog().recordsFor(MP.SumTo);
  ASSERT_EQ(Recs.size(), 2u);
  EXPECT_TRUE(Recs[0].Installed);
  EXPECT_TRUE(Recs[1].Installed);
  EXPECT_GT(Recs[1].Version, Recs[0].Version);
  EXPECT_GT(Recs[1].CompileSeq, Recs[0].CompileSeq);
  EXPECT_EQ(VM.compileLog().numRecords(), 2u);
}

//===----------------------------------------------------------------------===//
// resetMetrics
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, ResetMetricsClearsJitRuntimeAndHistograms) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, fastJit());
  for (int I = 0; I != 10; ++I)
    VM.call(MP.SumTo, {Value::makeInt(10)});
  VM.waitForCompilerIdle();
  ASSERT_GE(VM.jitMetrics().Compilations, 1u);
  ASSERT_GT(VM.runtime().metrics().CompiledCalls, 0u);
  MetricHistogram &Stall =
      VM.metricsRegistry().histogram("jit.mutator_stall_latency_ns");
  ASSERT_GT(Stall.count(), 0u);

  VM.resetMetrics();
  EXPECT_EQ(VM.jitMetrics().Compilations, 0u);
  EXPECT_EQ(VM.jitMetrics().MutatorStallNanos, 0u);
  EXPECT_EQ(VM.jitMetrics().EscapeStats.VirtualizedAllocations, 0u);
  EXPECT_EQ(VM.runtime().metrics().CompiledCalls, 0u);
  EXPECT_EQ(VM.runtime().metrics().InterpretedOps, 0u);
  EXPECT_EQ(VM.runtime().heap().allocationCount(), 0u);
  EXPECT_EQ(Stall.count(), 0u);
  // Compiled code survives the reset; only the window counters clear.
  EXPECT_NE(VM.compiledGraph(MP.SumTo), nullptr);
  VM.call(MP.SumTo, {Value::makeInt(10)});
  EXPECT_GT(VM.runtime().metrics().CompiledCalls, 0u);
}

//===----------------------------------------------------------------------===//
// Ring overflow accounting (last: it permanently fills one thread's
// buffer, which is why it records from a disposable thread).
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, RingOverflowCountsDropsNeverSilent) {
  Tracer::get().setEnabled(true);
  size_t Cap = Tracer::get().ringCapacity();
  std::thread Spammer([Cap] {
    for (size_t I = 0; I != Cap + 100; ++I)
      Tracer::get().instant(TraceCompile, "spam");
  });
  Spammer.join();
  Tracer::get().setEnabled(false);
  EXPECT_GE(Tracer::get().droppedEvents(), 100u);
  EXPECT_EQ(Tracer::get().highWater(), Cap);
  // The drop count reaches the export's otherData so no loss is silent.
  std::string Json = Tracer::get().exportJson();
  EXPECT_NE(Json.find("\"droppedEvents\""), std::string::npos);
}

} // namespace
