//===- inliner_test.cpp - Tests for call-site inlining -------------------------===//

#include "CompileTestHelpers.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testprogs;
using namespace jvm::testjit;

namespace {

TEST(InlinerTest, InlinesStaticCall) {
  MathProgram MP = makeMathProgram();
  Program &P = MP.P;
  // caller(x) = abs(x) + max(x, 3)
  MethodId Caller =
      P.addMethod("caller", NoClass, {ValueType::Int}, ValueType::Int);
  {
    CodeBuilder C(P, Caller);
    C.load(0).invokeStatic(MP.Abs);
    C.load(0).constI(3).invokeStatic(MP.Max);
    C.add().retInt();
    C.finish();
  }
  verifyProgramOrDie(P);

  TestJit J(P);
  std::unique_ptr<Graph> G = J.build(Caller, false);
  EXPECT_EQ(countNodes(*G, NodeKind::Invoke), 2u);
  unsigned N = inlineCalls(*G, P, nullptr, J.Opts);
  EXPECT_EQ(N, 2u);
  verifyGraphOrDie(*G);
  EXPECT_EQ(countNodes(*G, NodeKind::Invoke), 0u);

  EXPECT_EQ(J.execute(*G, {Value::makeInt(-7)}).asInt(), 7 + 3);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(5)}).asInt(), 5 + 5);
}

TEST(InlinerTest, MultipleReturnsMergeWithPhi) {
  MathProgram MP = makeMathProgram();
  Program &P = MP.P;
  MethodId Caller =
      P.addMethod("caller2", NoClass, {ValueType::Int}, ValueType::Int);
  {
    CodeBuilder C(P, Caller);
    C.load(0).invokeStatic(MP.Abs).retInt(); // abs has two returns.
    C.finish();
  }
  TestJit J(P);
  std::unique_ptr<Graph> G = J.build(Caller, false);
  inlineCalls(*G, P, nullptr, J.Opts);
  verifyGraphOrDie(*G);
  EXPECT_GE(countNodes(*G, NodeKind::Merge), 1u);
  EXPECT_GE(countNodes(*G, NodeKind::Phi), 1u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-4)}).asInt(), 4);
}

TEST(InlinerTest, RespectsDepthLimitOnRecursion) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  J.Opts.InlineMaxDepth = 3;
  std::unique_ptr<Graph> G = J.build(MP.Fact, false);
  inlineCalls(*G, MP.P, nullptr, J.Opts);
  verifyGraphOrDie(*G);
  // Still one residual call at the recursion frontier.
  EXPECT_EQ(countNodes(*G, NodeKind::Invoke), 1u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(10)}).asInt(), 3628800);
}

TEST(InlinerTest, RespectsCalleeSizeLimit) {
  MathProgram MP = makeMathProgram();
  Program &P = MP.P;
  MethodId Caller =
      P.addMethod("caller3", NoClass, {ValueType::Int}, ValueType::Int);
  {
    CodeBuilder C(P, Caller);
    C.load(0).invokeStatic(MP.SumTo).retInt();
    C.finish();
  }
  TestJit J(P);
  J.Opts.InlineMaxCalleeCodeSize = 3; // sumTo is larger than 3 bytecodes.
  std::unique_ptr<Graph> G = J.build(Caller, false);
  EXPECT_EQ(inlineCalls(*G, P, nullptr, J.Opts), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Invoke), 1u);
}

TEST(InlinerTest, FrameStatesChainToCaller) {
  CacheProgram CP = makeCacheProgram(true);
  TestJit J(CP.P);
  // Warm up so equals is devirtualized inside getValue, then inline it.
  J.interpret(CP.GetValue, {Value::makeInt(1), Value::makeRef(nullptr)});
  for (int I = 0; I != 30; ++I)
    J.interpret(CP.GetValue, {Value::makeInt(1), Value::makeRef(nullptr)});
  std::unique_ptr<Graph> G = J.build(CP.GetValue);
  inlineCalls(*G, CP.P, &J.Prof, J.Opts);
  verifyGraphOrDie(*G);

  // The inlined synchronized equals brings its monitor nodes along
  // (paper Listing 2), and their frame states chain to getValue's state.
  EXPECT_GE(countNodes(*G, NodeKind::MonitorEnter), 1u);
  bool FoundChained = false;
  for (unsigned Id = 0; Id != G->nodeIdBound(); ++Id)
    if (Node *N = G->nodeAt(Id))
      if (auto *FS = dyn_cast<FrameStateNode>(N))
        if (FS->method() == CP.Equals && FS->outer()) {
          EXPECT_EQ(FS->outer()->method(), CP.GetValue);
          FoundChained = true;
        }
  EXPECT_TRUE(FoundChained);
}

TEST(InlinerTest, InlinedGuardedDevirtualizedCall) {
  ShapesProgram SP = makeShapesProgram();
  TestJit J(SP.P);
  Value Circle = J.interpret(SP.MakeCircle, {Value::makeInt(2)});
  J.warmup(SP.AreaOf, {Circle}, 30);
  std::unique_ptr<Graph> G = J.buildOptimized(SP.AreaOf);
  // area() is inlined; only the type guard's deopt remains.
  EXPECT_EQ(countNodes(*G, NodeKind::Invoke), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Deoptimize), 1u);
  EXPECT_EQ(J.execute(*G, {Circle}).asInt(), 12);
  // Deopt path: a Square flows in, the guard fails, the interpreter
  // re-executes the virtual call.
  Value Square = J.interpret(SP.MakeSquare, {Value::makeInt(5)});
  EXPECT_EQ(J.execute(*G, {Square}).asInt(), 25);
  EXPECT_EQ(J.RT.metrics().Deopts, 1u);
}

TEST(InlinerTest, DeoptInsideInlinedCalleeRebuildsBothFrames) {
  MathProgram MP = makeMathProgram();
  Program &P = MP.P;
  MethodId Caller =
      P.addMethod("caller4", NoClass, {ValueType::Int}, ValueType::Int);
  {
    // caller4(x) = abs(x) * 10
    CodeBuilder C(P, Caller);
    C.load(0).invokeStatic(MP.Abs).constI(10).mul().retInt();
    C.finish();
  }
  TestJit J(P);
  J.Opts.PruneMinProfile = 10;
  // Warm abs only with positives so its negative branch gets pruned.
  for (int I = 1; I <= 20; ++I)
    J.interpret(Caller, {Value::makeInt(I)});
  std::unique_ptr<Graph> G = J.buildOptimized(Caller);
  ASSERT_GE(countNodes(*G, NodeKind::Deoptimize), 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::Invoke), 0u);

  // Fast path compiled, slow path deopts *inside the inlined abs* and
  // must finish both the abs frame and the caller4 frame correctly.
  EXPECT_EQ(J.execute(*G, {Value::makeInt(3)}).asInt(), 30);
  EXPECT_EQ(J.RT.metrics().Deopts, 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-3)}).asInt(), 30);
  EXPECT_EQ(J.RT.metrics().Deopts, 1u);
}

} // namespace
