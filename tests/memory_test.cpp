//===- memory_test.cpp - Region/TLAB allocator and copying GC tests ----------===//
//
// The moving-collector surface PR 5 adds: TLAB refill and overflow
// boundaries, object motion with interior references and cycles,
// age-based promotion, updating roots across all three execution tiers
// mid-scavenge, deopt rematerialization under GC pressure, and a stress
// loop sized for the ASan build (-DJVM_SANITIZE=address).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testprogs;

namespace {

/// A tiny heap every test can fill deterministically: 4 KB regions, two
/// of them young. A 2-slot instance is 56 bytes, so one region holds
/// floor(4096/56) = 73 of them.
memory::MemoryConfig tinyHeap() {
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 8192;
  return C;
}

Program twoFieldProgram() {
  Program P;
  ClassId A = P.addClass("A");
  P.addField(A, "x", ValueType::Int);
  P.addField(A, "next", ValueType::Ref);
  P.addStatic("root", ValueType::Ref);
  return P;
}

/// Linked-list workload: buildAndSum(n) allocates n Nodes, links them
/// into a list held in a local across every later allocation point, then
/// walks the list summing. Every node escapes (stored into its
/// successor), so no tier can scalar-replace the churn away — the GC
/// must move live, interior-referenced objects under all three tiers.
struct ListProgram {
  Program P;
  ClassId Node = NoClass;
  FieldIndex NodeVal = -1, NodeNext = -1;
  MethodId BuildAndSum = NoMethod;
};

ListProgram makeListProgram() {
  ListProgram R;
  Program &P = R.P;
  R.Node = P.addClass("Node");
  R.NodeVal = P.addField(R.Node, "val", ValueType::Int);
  R.NodeNext = P.addField(R.Node, "next", ValueType::Ref);
  R.BuildAndSum =
      P.addMethod("buildAndSum", NoClass, {ValueType::Int}, ValueType::Int);
  CodeBuilder C(P, R.BuildAndSum);
  unsigned Head = C.newLocal();
  unsigned I = C.newLocal();
  unsigned N = C.newLocal();
  unsigned Sum = C.newLocal();
  Label BuildHead = C.newLabel(), BuildExit = C.newLabel();
  Label WalkHead = C.newLabel(), WalkExit = C.newLabel();
  C.constNull().store(Head);
  C.constI(0).store(I);
  C.bind(BuildHead);
  C.load(I).load(0).ifGe(BuildExit);
  C.newObj(R.Node).store(N);
  C.load(N).load(I).putField(R.Node, R.NodeVal);
  C.load(N).load(Head).putField(R.Node, R.NodeNext);
  C.load(N).store(Head);
  C.load(I).constI(1).add().store(I);
  C.gotoL(BuildHead);
  C.bind(BuildExit);
  C.constI(0).store(Sum);
  C.bind(WalkHead);
  C.load(Head).ifNull(WalkExit);
  C.load(Sum).load(Head).getField(R.Node, R.NodeVal).add().store(Sum);
  C.load(Head).getField(R.Node, R.NodeNext).store(Head);
  C.gotoL(WalkHead);
  C.bind(WalkExit);
  C.load(Sum).retInt();
  C.finish();
  verifyProgramOrDie(P);
  return R;
}

/// Deopt-remat workload: boxAbs(n) wraps n in a Box and branches on the
/// sign. Warmed with positives only, the negative branch is pruned and
/// PEA scalar-replaces the Box; a negative argument then deoptimizes at
/// the guard with the Box still virtual, forcing rematerialization
/// through the TLAB path inside the resuming interpreter.
struct BoxAbsProgram {
  Program P;
  ClassId Box = NoClass;
  FieldIndex BoxVal = -1;
  MethodId BoxAbs = NoMethod;
};

BoxAbsProgram makeBoxAbsProgram() {
  BoxAbsProgram R;
  Program &P = R.P;
  R.Box = P.addClass("Box");
  R.BoxVal = P.addField(R.Box, "val", ValueType::Int);
  R.BoxAbs = P.addMethod("boxAbs", NoClass, {ValueType::Int}, ValueType::Int);
  CodeBuilder C(P, R.BoxAbs);
  unsigned B = C.newLocal();
  Label Neg = C.newLabel();
  C.newObj(R.Box).store(B);
  C.load(B).load(0).putField(R.Box, R.BoxVal);
  C.load(0).constI(0).ifLt(Neg);
  C.load(B).getField(R.Box, R.BoxVal).retInt();
  C.bind(Neg);
  C.constI(0).load(B).getField(R.Box, R.BoxVal).sub().retInt();
  C.finish();
  verifyProgramOrDie(P);
  return R;
}

VMOptions pressureJit(ExecMode Exec, size_t YoungBytes = 8192,
                      bool Stress = false) {
  VMOptions O;
  O.CompileThreshold = 5;
  O.Compiler.PruneMinProfile = 5;
  O.Compiler.DevirtMinProfile = 5;
  O.CompilerThreads = 0; // deterministic tier-up points
  O.Exec = Exec;
  O.Memory.RegionBytes = 4096;
  O.Memory.YoungBytes = YoungBytes;
  O.Memory.StressGc = Stress;
  return O;
}

// TLAB boundaries ------------------------------------------------------------

TEST(TlabTest, RefillAtRegionBoundary) {
  Program P = twoFieldProgram();
  Runtime RT(P, tinyHeap());
  // 73 objects of 56 bytes fit in one 4096-byte region; the 74th forces
  // a TLAB refill into the second young region — no collection yet.
  for (int I = 0; I != 74; ++I)
    RT.allocateInstance(0);
  EXPECT_EQ(RT.heap().allocatedBytes(), 74u * 56u);
  EXPECT_EQ(RT.heap().scavenges(), 0u);
  EXPECT_EQ(RT.heap().liveObjects(), 74u);
}

TEST(TlabTest, ExactFitLeavesNoSlack) {
  Program P = twoFieldProgram();
  Runtime RT(P, tinyHeap());
  // One array sized to exactly a region: 24 + 16*254 + 24 + 16 = wrong;
  // compute exactly: allocationSize(n) = 24 + 16n, so n = 254 gives
  // 4088 and n = 2 more instances would not fit. Fill the first region
  // to the byte with 4088 + one 8-byte... no smaller unit exists, so
  // assert the 254-slot array plus the next allocation spans regions.
  HeapObject *A = RT.heap().allocateArray(ValueType::Int, 254);
  EXPECT_EQ(A->sizeInBytes(), 4088u);
  HeapObject *B = RT.allocateInstance(0);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(RT.heap().scavenges(), 0u);
  EXPECT_EQ(RT.heap().liveObjects(), 2u);
}

TEST(TlabTest, OverflowTriggersScavenge) {
  Program P = twoFieldProgram();
  Runtime RT(P, tinyHeap());
  // Two regions of unreachable churn, then more: the third refill
  // request exceeds YoungBytes and must scavenge. Everything is garbage,
  // so occupancy returns to zero while allocation metrics keep growing.
  for (int I = 0; I != 400; ++I)
    RT.allocateInstance(0);
  EXPECT_GE(RT.heap().scavenges(), 1u);
  EXPECT_EQ(RT.heap().fullGcs(), 0u);
  EXPECT_EQ(RT.heap().allocationCount(), 400u);
  EXPECT_EQ(RT.heap().allocatedBytes(), 400u * 56u);
  EXPECT_LT(RT.heap().liveObjects(), 400u);
}

// Object motion --------------------------------------------------------------

TEST(MotionTest, InteriorRefsAndCyclesSurviveScavenge) {
  Program P = twoFieldProgram();
  Runtime RT(P, tinyHeap());
  // A three-node cycle rooted in the static table.
  HeapObject *A = RT.allocateInstance(0);
  A->setSlot(0, Value::makeInt(1));
  RT.setStatic(0, Value::makeRef(A));
  HeapObject *B = RT.allocateInstance(0);
  B->setSlot(0, Value::makeInt(2));
  HeapObject *C = RT.allocateInstance(0);
  C->setSlot(0, Value::makeInt(3));
  A->setSlot(1, Value::makeRef(B));
  B->setSlot(1, Value::makeRef(C));
  C->setSlot(1, Value::makeRef(RT.getStatic(0).asRef()));

  for (int Round = 0; Round != 4; ++Round) {
    RT.heap().scavenge();
    // Re-read through the updated root every round: the objects move.
    HeapObject *NewA = RT.getStatic(0).asRef();
    ASSERT_NE(NewA, nullptr);
    HeapObject *NewB = NewA->slot(1).asRef();
    HeapObject *NewC = NewB->slot(1).asRef();
    EXPECT_EQ(NewA->slot(0), Value::makeInt(1));
    EXPECT_EQ(NewB->slot(0), Value::makeInt(2));
    EXPECT_EQ(NewC->slot(0), Value::makeInt(3));
    // The cycle must close on the *same relocated copy*, not a clone:
    // forwarding pointers keep identity.
    EXPECT_EQ(NewC->slot(1).asRef(), NewA);
    EXPECT_EQ(RT.heap().liveObjects(), 3u);
  }
  EXPECT_GE(RT.heap().bytesCopied() + RT.heap().bytesPromoted(),
            3u * 56u); // moved at least once
}

TEST(MotionTest, RootScopeVectorIsUpdatedInPlace) {
  Program P = twoFieldProgram();
  Runtime RT(P, tinyHeap());
  std::vector<Value> Frame;
  Frame.push_back(Value::makeRef(RT.allocateInstance(0)));
  Frame[0].asRef()->setSlot(0, Value::makeInt(41));
  Runtime::RootScope Scope(RT, &Frame);
  HeapObject *Before = Frame[0].asRef();
  RT.heap().scavenge();
  HeapObject *After = Frame[0].asRef();
  ASSERT_NE(After, nullptr);
  EXPECT_NE(After, Before); // the slot was rewritten, not left stale
  EXPECT_EQ(After->slot(0), Value::makeInt(41));
}

// Promotion ------------------------------------------------------------------

TEST(PromotionTest, SurvivorsPromoteAfterAgeThreshold) {
  Program P = twoFieldProgram();
  memory::MemoryConfig C = tinyHeap();
  C.PromoteAge = 2;
  Runtime RT(P, C);
  HeapObject *Kept = RT.allocateInstance(0);
  Kept->setSlot(0, Value::makeInt(7));
  RT.setStatic(0, Value::makeRef(Kept));
  EXPECT_EQ(RT.heap().oldBytes(), 0u);
  // Scavenge 1 copies at age 0->1 (survivor), scavenge 2 promotes.
  RT.heap().scavenge();
  EXPECT_EQ(RT.heap().bytesPromoted(), 0u);
  RT.heap().scavenge();
  EXPECT_EQ(RT.heap().bytesPromoted(), 56u);
  EXPECT_EQ(RT.heap().oldBytes(), 56u);
  // A promoted object holds young children alive only through the
  // remembered set: hang a young child off it via the barriered store
  // and make sure the card-driven scavenge finds the child.
  HeapObject *Old = RT.getStatic(0).asRef();
  HeapObject *Child = RT.allocateInstance(0);
  Child->setSlot(0, Value::makeInt(8));
  RT.heap().write(Old, 1, Value::makeRef(Child));
  EXPECT_TRUE(RT.heap().cardIsDirty(Old));
  RT.heap().scavenge();
  Old = RT.getStatic(0).asRef();
  ASSERT_NE(Old->slot(1).asRef(), nullptr);
  EXPECT_EQ(Old->slot(1).asRef()->slot(0), Value::makeInt(8));
  EXPECT_EQ(Old->slot(0), Value::makeInt(7));
}

TEST(PromotionTest, BornOldAndHumongousPlacement) {
  Program P = twoFieldProgram();
  Runtime RT(P, tinyHeap()); // largeObjectBytes = 2048
  // 24 + 16*200 = 3224 > 2048: born old, still collected precisely.
  HeapObject *BornOld = RT.heap().allocateArray(ValueType::Int, 200);
  BornOld->setSlot(199, Value::makeInt(5));
  RT.setStatic(0, Value::makeRef(BornOld));
  EXPECT_EQ(RT.heap().oldBytes(), BornOld->sizeInBytes());
  // 24 + 16*300 = 4824 > RegionBytes: humongous, never moves. Slots are
  // untyped Values, so an Int array can carry the reference to it.
  HeapObject *Huge = RT.heap().allocateArray(ValueType::Int, 300);
  RT.heap().write(BornOld, 0, Value::makeRef(Huge));
  RT.heap().scavenge();
  HeapObject *Old = RT.getStatic(0).asRef();
  EXPECT_EQ(Old->slot(199), Value::makeInt(5));
  EXPECT_EQ(Old->slot(0).asRef(), Huge); // humongous objects are pinned
  // Unreachable humongous objects die in a full collection.
  RT.heap().write(Old, 0, Value::makeRef(nullptr));
  RT.heap().collect();
  EXPECT_EQ(RT.heap().liveObjects(), 1u);
}

// Executor tiers under GC pressure -------------------------------------------

TEST(PressureTest, ListWorkloadMovesLiveFramesAcrossTiers) {
  const int N = 300; // ~300 * 56 bytes/node ≈ 4 young spaces of churn
  const int64_t Expected = int64_t(N) * (N - 1) / 2;
  int64_t Results[3];
  uint64_t Scavenges[3];
  ExecMode Modes[3] = {ExecMode::Graph, ExecMode::Linear,
                       ExecMode::Differential};
  for (int M = 0; M != 3; ++M) {
    ListProgram LP = makeListProgram();
    VirtualMachine VM(LP.P, pressureJit(Modes[M]));
    int64_t Last = 0;
    for (int I = 0; I != 10; ++I)
      Last = VM.call(LP.BuildAndSum, {Value::makeInt(N)}).asInt();
    // The loop tiers up mid-way: later iterations run compiled code
    // whose frames (graph Env / linear FramePool) hold the list head
    // while scavenges relocate the nodes under it.
    EXPECT_NE(VM.compiledGraph(LP.BuildAndSum), nullptr);
    Results[M] = Last;
    Scavenges[M] = VM.runtime().heap().scavenges();
  }
  for (int M = 0; M != 3; ++M) {
    EXPECT_EQ(Results[M], Expected) << "mode " << M;
    EXPECT_GE(Scavenges[M], 2u) << "mode " << M;
  }
}

TEST(PressureTest, DifferentialSurvivesGcStress) {
  // JVM_GC_STRESS semantics: scavenge before *every* allocation. Any
  // reference a tier keeps outside the root set goes stale immediately.
  ListProgram LP = makeListProgram();
  VirtualMachine VM(LP.P,
                    pressureJit(ExecMode::Differential, 8192, true));
  for (int I = 0; I != 8; ++I)
    EXPECT_EQ(VM.call(LP.BuildAndSum, {Value::makeInt(60)}).asInt(),
              60 * 59 / 2);
  EXPECT_GE(VM.runtime().heap().scavenges(), 2u);
}

TEST(PressureTest, InterpreterFramesRootMidLoop) {
  ListProgram LP = makeListProgram();
  VMOptions O = pressureJit(ExecMode::Linear, 8192, true);
  O.EnableJit = false; // pure interpreter: its frames are the only roots
  VirtualMachine VM(LP.P, O);
  EXPECT_EQ(VM.call(LP.BuildAndSum, {Value::makeInt(200)}).asInt(),
            200 * 199 / 2);
  EXPECT_GE(VM.runtime().heap().scavenges(), 2u);
}

TEST(PressureTest, DeoptRematerializesThroughTlabUnderPressure) {
  BoxAbsProgram BP = makeBoxAbsProgram();
  VMOptions O = pressureJit(ExecMode::Linear, 8192, true);
  VirtualMachine VM(BP.P, O);
  // Positive-only warmup prunes the negative branch and lets PEA
  // scalar-replace the Box entirely.
  for (int I = 1; I <= 10; ++I)
    EXPECT_EQ(VM.call(BP.BoxAbs, {Value::makeInt(I)}).asInt(), I);
  ASSERT_NE(VM.compiledGraph(BP.BoxAbs), nullptr);
  // Negative arguments fail the guard: the Box is rematerialized (a
  // real TLAB allocation, with GC stress scavenging around it) and the
  // interpreter resumes into the un-pruned branch.
  uint64_t AllocsBefore = VM.runtime().heap().allocationCount();
  EXPECT_EQ(VM.call(BP.BoxAbs, {Value::makeInt(-9)}).asInt(), 9);
  EXPECT_GE(VM.runtime().metrics().Deopts, 1u);
  EXPECT_GT(VM.runtime().heap().allocationCount(), AllocsBefore);
}

// Observability --------------------------------------------------------------

TEST(GcMetricsTest, LogRecordsCollectionsAndResetClearsWindow) {
  Program P = twoFieldProgram();
  Runtime RT(P, tinyHeap());
  for (int I = 0; I != 400; ++I)
    RT.allocateInstance(0);
  RT.heap().collect();
  ASSERT_GE(RT.heap().scavenges(), 1u);
  ASSERT_GE(RT.heap().fullGcs(), 1u);
  std::string Log = RT.heap().renderGcLog();
  EXPECT_NE(Log.find("scavenge"), std::string::npos);
  EXPECT_NE(Log.find("full"), std::string::npos);
  EXPECT_GE(RT.heap().scavengePauses().count(), 1u);
  EXPECT_GE(RT.heap().fullGcPauses().count(), 1u);
  RT.heap().resetMetrics();
  EXPECT_EQ(RT.heap().gcRuns(), 0u);
  EXPECT_EQ(RT.heap().allocationCount(), 0u);
  EXPECT_EQ(RT.heap().bytesCopied(), 0u);
  EXPECT_EQ(RT.heap().bytesPromoted(), 0u);
  EXPECT_EQ(RT.heap().scavengePauses().count(), 0u);
  EXPECT_EQ(RT.heap().fullGcPauses().count(), 0u);
}

// Stress (the ASan build runs this suite; see README) ------------------------

TEST(StressTest, ChurnWithLiveWindowStaysConsistent) {
  Program P = twoFieldProgram();
  memory::MemoryConfig C = tinyHeap();
  C.FullGcThresholdBytes = 16384; // force full GCs too
  Runtime RT(P, C);
  // A sliding window of live objects chained through the static root:
  // node I keeps node I-1 alive until the window moves past it. Constant
  // allocation with a constantly-changing live set exercises survivor
  // copies, promotions, old-space scanning and full-GC compaction; under
  // ASan any stale pointer or header smash is fatal.
  const int Window = 50, Total = 5000;
  RT.setStatic(0, Value::makeRef(nullptr));
  for (int I = 0; I != Total; ++I) {
    HeapObject *N = RT.allocateInstance(0);
    N->setSlot(0, Value::makeInt(I));
    N->setSlot(1, RT.getStatic(0));
    RT.setStatic(0, Value::makeRef(N));
    if (I % Window == Window - 1) {
      // Truncate the chain: walk Window nodes and cut the tail.
      HeapObject *Cur = RT.getStatic(0).asRef();
      for (int J = 0; J != Window - 1 && Cur; ++J)
        Cur = Cur->slot(1).asRef();
      if (Cur)
        RT.heap().write(Cur, 1, Value::makeRef(nullptr));
    }
  }
  ASSERT_GE(RT.heap().scavenges(), 2u);
  ASSERT_GE(RT.heap().fullGcs(), 1u);
  // The chain from the root must hold the last Window values descending.
  HeapObject *Cur = RT.getStatic(0).asRef();
  int ExpectVal = Total - 1;
  while (Cur) {
    EXPECT_EQ(Cur->slot(0), Value::makeInt(ExpectVal--));
    Cur = Cur->slot(1).asRef();
  }
  EXPECT_GE(Total - 1 - ExpectVal, Window / 2);
}

} // namespace
