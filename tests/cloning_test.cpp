//===- cloning_test.cpp - Graph cloning and DOT export tests --------------------===//

#include "ir/Cloning.h"
#include "ir/Graph.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace jvm;

namespace {

/// A callee-shaped graph: f(x) = x < 0 ? -x : x, with a frame state on a
/// store and one loop.
std::unique_ptr<Graph> makeSource() {
  auto G = std::make_unique<Graph>(7, std::vector<ValueType>{ValueType::Int});
  auto *Cond =
      G->create<CompareNode>(CmpKind::IntLt, G->param(0), G->intConstant(0));
  auto *If = G->create<IfNode>(Cond);
  If->setTrueProbability(0.25);
  G->start()->setNext(If);
  auto *TB = G->create<BeginNode>();
  auto *FB = G->create<BeginNode>();
  If->setTrueSuccessor(TB);
  If->setFalseSuccessor(FB);
  auto *Neg =
      G->create<ArithNode>(ArithKind::Sub, G->intConstant(0), G->param(0));
  auto *E1 = G->create<EndNode>();
  auto *E2 = G->create<EndNode>();
  TB->setNext(E1);
  FB->setNext(E2);
  auto *M = G->create<MergeNode>();
  M->addEnd(E1);
  M->addEnd(E2);
  auto *Phi = G->create<PhiNode>(M, ValueType::Int);
  Phi->appendValue(Neg);
  Phi->appendValue(G->param(0));
  auto *FS = G->create<FrameStateNode>(7, 3, false, 1, 0, 0);
  FS->setLocalAt(0, Phi);
  auto *Store = G->create<StoreStaticNode>(0, Phi, FS);
  M->setNext(Store);
  auto *Ret = G->create<ReturnNode>(Phi);
  Store->setNext(Ret);
  verifyGraphOrDie(*G);
  return G;
}

TEST(CloningTest, ClonePreservesStructure) {
  std::unique_ptr<Graph> Src = makeSource();
  Graph Dest(1, {ValueType::Int, ValueType::Int});
  // Parameter 0 of the callee maps to an expression in the caller.
  auto *Arg =
      Dest.create<ArithNode>(ArithKind::Add, Dest.param(0), Dest.param(1));
  std::map<const Node *, Node *> Map = cloneGraphInto(Dest, *Src, {Arg});

  // The callee Start maps to a Begin; the clone is a parallel universe.
  EXPECT_TRUE(isa<BeginNode>(Map.at(Src->start())));
  for (const auto &[Old, New] : Map) {
    if (isa<ParameterNode>(Old) || isa<ConstantIntNode>(Old) ||
        isa<ConstantNullNode>(Old) || isa<StartNode>(Old))
      continue;
    EXPECT_EQ(Old->kind(), New->kind());
    EXPECT_EQ(Old->numInputs(), New->numInputs());
    EXPECT_NE(Old->graph(), New->graph());
  }
}

TEST(CloningTest, ParametersMapToArguments) {
  std::unique_ptr<Graph> Src = makeSource();
  Graph Dest(1, {ValueType::Int});
  std::map<const Node *, Node *> Map =
      cloneGraphInto(Dest, *Src, {Dest.param(0)});
  EXPECT_EQ(Map.at(Src->param(0)), Dest.param(0));
}

TEST(CloningTest, ConstantsAreDeduplicatedAgainstDest) {
  std::unique_ptr<Graph> Src = makeSource();
  Graph Dest(1, {ValueType::Int});
  ConstantIntNode *Zero = Dest.intConstant(0);
  std::map<const Node *, Node *> Map =
      cloneGraphInto(Dest, *Src, {Dest.param(0)});
  EXPECT_EQ(Map.at(Src->intConstant(0)), Zero);
}

TEST(CloningTest, AttributesSurviveCloning) {
  std::unique_ptr<Graph> Src = makeSource();
  Graph Dest(1, {ValueType::Int});
  std::map<const Node *, Node *> Map =
      cloneGraphInto(Dest, *Src, {Dest.param(0)});
  for (const auto &[Old, New] : Map) {
    if (const auto *If = dyn_cast<IfNode>(Old)) {
      EXPECT_DOUBLE_EQ(cast<IfNode>(New)->trueProbability(),
                       If->trueProbability());
    }
    if (const auto *FS = dyn_cast<FrameStateNode>(Old)) {
      EXPECT_EQ(cast<FrameStateNode>(New)->method(), FS->method());
      EXPECT_EQ(cast<FrameStateNode>(New)->bci(), FS->bci());
    }
  }
}

TEST(CloningTest, SourceGraphIsUntouched) {
  std::unique_ptr<Graph> Src = makeSource();
  unsigned LiveBefore = Src->numLiveNodes();
  std::string TextBefore = graphToString(*Src);
  Graph Dest(1, {ValueType::Int});
  cloneGraphInto(Dest, *Src, {Dest.param(0)});
  EXPECT_EQ(Src->numLiveNodes(), LiveBefore);
  EXPECT_EQ(graphToString(*Src), TextBefore);
  EXPECT_TRUE(verifyGraph(*Src).empty());
}

TEST(DotExportTest, ContainsNodesAndEdgeStyles) {
  std::unique_ptr<Graph> Src = makeSource();
  std::string Dot = graphToDot(*Src);
  EXPECT_NE(Dot.find("digraph method_7"), std::string::npos);
  EXPECT_NE(Dot.find("style=bold"), std::string::npos);   // Control flow.
  EXPECT_NE(Dot.find("color=gray"), std::string::npos);   // Data edges.
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos); // Frame state.
  EXPECT_NE(Dot.find("label=\"T\""), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(Dot.front(), 'd');
  EXPECT_EQ(Dot[Dot.size() - 2], '}');
}

TEST(DotExportTest, LoopBackEdgeMarkedUnconstrained) {
  Graph G(0, {ValueType::Int});
  auto *FwdEnd = G.create<EndNode>();
  G.start()->setNext(FwdEnd);
  auto *Loop = G.create<LoopBeginNode>();
  Loop->addEnd(FwdEnd);
  auto *If = G.create<IfNode>(G.param(0));
  Loop->setNext(If);
  auto *Body = G.create<BeginNode>();
  auto *ExitB = G.create<BeginNode>();
  If->setTrueSuccessor(Body);
  If->setFalseSuccessor(ExitB);
  auto *Back = G.create<LoopEndNode>(Loop);
  Body->setNext(Back);
  Loop->addBackEdge(Back);
  auto *Exit = G.create<LoopExitNode>(Loop);
  ExitB->setNext(Exit);
  auto *Ret = G.create<ReturnNode>(nullptr);
  Exit->setNext(Ret);
  std::string Dot = graphToDot(G);
  EXPECT_NE(Dot.find("constraint=false"), std::string::npos);
}

} // namespace
