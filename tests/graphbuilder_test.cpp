//===- graphbuilder_test.cpp - Tests for bytecode -> IR translation ----------===//

#include "CompileTestHelpers.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testprogs;
using namespace jvm::testjit;

namespace {

TEST(GraphBuilderTest, StraightLineAbs) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  std::unique_ptr<Graph> G = J.build(MP.Abs, /*WithProfile=*/false);
  EXPECT_EQ(countNodes(*G, NodeKind::If), 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::Return), 2u);
  EXPECT_EQ(countNodes(*G, NodeKind::Merge), 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-9)}).asInt(), 9);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(9)}).asInt(), 9);
}

TEST(GraphBuilderTest, LoopBuildsLoopBeginWithPhis) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  std::unique_ptr<Graph> G = J.build(MP.SumTo, false);
  EXPECT_EQ(countNodes(*G, NodeKind::LoopBegin), 1u);
  EXPECT_GE(countNodes(*G, NodeKind::LoopEnd), 1u);
  EXPECT_GE(countNodes(*G, NodeKind::LoopExit), 1u);
  EXPECT_GE(countNodes(*G, NodeKind::Phi), 2u); // sum and i.
  EXPECT_EQ(J.execute(*G, {Value::makeInt(100)}).asInt(), 5050);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(0)}).asInt(), 0);
}

TEST(GraphBuilderTest, CallsBecomeInvokes) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  std::unique_ptr<Graph> G = J.build(MP.Fact, false);
  EXPECT_EQ(countNodes(*G, NodeKind::Invoke), 1u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(6)}).asInt(), 720);
}

TEST(GraphBuilderTest, FieldAccessAndAllocation) {
  ChurnProgram CP = makeChurnProgram();
  TestJit J(CP.P);
  std::unique_ptr<Graph> G = J.build(CP.SumBoxes, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::StoreField), 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::LoadField), 1u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(10)}).asInt(), 45);
  EXPECT_EQ(J.RT.heap().allocationCount(), 10u);
}

TEST(GraphBuilderTest, CacheProgramSemanticsMatchInterpreter) {
  CacheProgram CP = makeCacheProgram(true);
  TestJit J(CP.P);
  std::unique_ptr<Graph> G = J.build(CP.GetValue, false);

  // Interleave compiled executions; results must match interpreter
  // behaviour (hit returns the cached box).
  Value V1 = J.execute(*G, {Value::makeInt(7), Value::makeRef(nullptr)});
  Value V2 = J.execute(*G, {Value::makeInt(7), Value::makeRef(nullptr)});
  EXPECT_EQ(V1.asRef(), V2.asRef());
  Value V3 = J.execute(*G, {Value::makeInt(8), Value::makeRef(nullptr)});
  EXPECT_NE(V3.asRef(), V1.asRef());
  EXPECT_EQ(V3.asRef()->slot(CP.BoxVal), Value::makeInt(8));
}

TEST(GraphBuilderTest, MonitorNodesCarryFrameStates) {
  CacheProgram CP = makeCacheProgram(true);
  TestJit J(CP.P);
  std::unique_ptr<Graph> G = J.build(CP.Equals, false);
  ASSERT_EQ(countNodes(*G, NodeKind::MonitorEnter), 1u);
  ASSERT_EQ(countNodes(*G, NodeKind::MonitorExit), 1u);
  for (unsigned Id = 0; Id != G->nodeIdBound(); ++Id)
    if (Node *N = G->nodeAt(Id))
      if (auto *SN = dyn_cast<StatefulNode>(N)) {
        EXPECT_NE(SN->state(), nullptr)
            << "stateful node without frame state: " << nodeToString(N);
      }
}

TEST(GraphBuilderTest, BranchProbabilityFromProfile) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  // abs: 3 negative, 1 positive -> branch taken 3 of 4 times.
  J.interpret(MP.Abs, {Value::makeInt(-1)});
  J.interpret(MP.Abs, {Value::makeInt(-2)});
  J.interpret(MP.Abs, {Value::makeInt(-3)});
  J.interpret(MP.Abs, {Value::makeInt(4)});
  J.Opts.PruneColdBranches = false;
  std::unique_ptr<Graph> G = J.build(MP.Abs);
  for (unsigned Id = 0; Id != G->nodeIdBound(); ++Id)
    if (Node *N = G->nodeAt(Id))
      if (auto *If = dyn_cast<IfNode>(N)) {
        EXPECT_NEAR(If->trueProbability(), 0.75, 1e-9);
      }
}

TEST(GraphBuilderTest, ColdBranchBecomesDeoptimize) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  J.Opts.PruneMinProfile = 10;
  for (int I = 0; I != 20; ++I)
    J.interpret(MP.Abs, {Value::makeInt(I + 1)}); // Never negative.
  std::unique_ptr<Graph> G = J.build(MP.Abs);
  EXPECT_EQ(countNodes(*G, NodeKind::Deoptimize), 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::Return), 1u);

  // Fast path executes compiled; the pruned path deoptimizes into the
  // interpreter and still computes the right answer.
  EXPECT_EQ(J.execute(*G, {Value::makeInt(5)}).asInt(), 5);
  EXPECT_EQ(J.RT.metrics().Deopts, 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-5)}).asInt(), 5);
  EXPECT_EQ(J.RT.metrics().Deopts, 1u);
}

TEST(GraphBuilderTest, MonomorphicCallDevirtualizedWithGuard) {
  ShapesProgram SP = makeShapesProgram();
  TestJit J(SP.P);
  J.Opts.DevirtMinProfile = 5;
  Value Circle = J.interpret(SP.MakeCircle, {Value::makeInt(2)});
  std::vector<Value> Args{Circle};
  J.warmup(SP.AreaOf, Args, 10);

  std::unique_ptr<Graph> G = J.build(SP.AreaOf);
  // Guard: InstanceOf + If + Deoptimize; call devirtualized to static.
  EXPECT_EQ(countNodes(*G, NodeKind::InstanceOf), 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::Deoptimize), 1u);
  bool FoundDirect = false;
  for (unsigned Id = 0; Id != G->nodeIdBound(); ++Id)
    if (Node *N = G->nodeAt(Id))
      if (auto *Call = dyn_cast<InvokeNode>(N)) {
        EXPECT_EQ(Call->callKind(), CallKind::Static);
        EXPECT_EQ(Call->callee(), SP.CircleArea);
        FoundDirect = true;
      }
  EXPECT_TRUE(FoundDirect);

  // Guard holds for circles, deopts for squares.
  EXPECT_EQ(J.execute(*G, {Circle}).asInt(), 12);
  EXPECT_EQ(J.RT.metrics().Deopts, 0u);
  Value Square = J.interpret(SP.MakeSquare, {Value::makeInt(3)});
  EXPECT_EQ(J.execute(*G, {Square}).asInt(), 9);
  EXPECT_EQ(J.RT.metrics().Deopts, 1u);
}

TEST(GraphBuilderTest, PolymorphicCallStaysVirtual) {
  ShapesProgram SP = makeShapesProgram();
  TestJit J(SP.P);
  Value Circle = J.interpret(SP.MakeCircle, {Value::makeInt(2)});
  Value Square = J.interpret(SP.MakeSquare, {Value::makeInt(3)});
  for (int I = 0; I != 10; ++I) {
    J.interpret(SP.AreaOf, {Circle});
    J.interpret(SP.AreaOf, {Square});
  }
  std::unique_ptr<Graph> G = J.build(SP.AreaOf);
  EXPECT_EQ(countNodes(*G, NodeKind::Deoptimize), 0u);
  for (unsigned Id = 0; Id != G->nodeIdBound(); ++Id)
    if (Node *N = G->nodeAt(Id))
      if (auto *Call = dyn_cast<InvokeNode>(N)) {
        EXPECT_EQ(Call->callKind(), CallKind::Virtual);
      }
  // Virtual dispatch still works from compiled code.
  EXPECT_EQ(J.execute(*G, {Circle}).asInt(), 12);
  EXPECT_EQ(J.execute(*G, {Square}).asInt(), 9);
}

TEST(GraphBuilderTest, NestedLoopsAndBreaks) {
  // sumGrid(n): for i in 0..n: for j in 0..n: if (i==j && i>n/2) break
  // inner; sum += i*j.
  Program P;
  MethodId M = P.addMethod("sumGrid", NoClass, {ValueType::Int},
                           ValueType::Int);
  CodeBuilder C(P, M);
  unsigned Sum = C.newLocal(), I = C.newLocal(), Jv = C.newLocal();
  Label IHead = C.newLabel(), IExit = C.newLabel();
  Label JHead = C.newLabel(), JExit = C.newLabel(), Body = C.newLabel();
  C.constI(0).store(Sum).constI(0).store(I);
  C.bind(IHead);
  C.load(I).load(0).ifGe(IExit);
  C.constI(0).store(Jv);
  C.bind(JHead);
  C.load(Jv).load(0).ifGe(JExit);
  C.load(I).load(Jv).ifNe(Body);
  C.load(I).load(0).constI(2).div().ifLe(Body);
  C.gotoL(JExit); // Break out of the inner loop.
  C.bind(Body);
  C.load(Sum).load(I).load(Jv).mul().add().store(Sum);
  C.load(Jv).constI(1).add().store(Jv);
  C.gotoL(JHead);
  C.bind(JExit);
  C.load(I).constI(1).add().store(I);
  C.gotoL(IHead);
  C.bind(IExit);
  C.load(Sum).retInt();
  C.finish();
  verifyProgramOrDie(P);

  TestJit J(P);
  std::unique_ptr<Graph> G = J.build(M, false);
  EXPECT_EQ(countNodes(*G, NodeKind::LoopBegin), 2u);
  // Differential check against the interpreter for several sizes.
  for (int N : {0, 1, 2, 5, 9}) {
    Value Expected = J.interpret(M, {Value::makeInt(N)});
    EXPECT_EQ(J.execute(*G, {Value::makeInt(N)}).asInt(), Expected.asInt())
        << "n=" << N;
  }
}

TEST(GraphBuilderTest, ArraysInGraphs) {
  Program P;
  MethodId M =
      P.addMethod("fillSum", NoClass, {ValueType::Int}, ValueType::Int);
  CodeBuilder C(P, M);
  unsigned Arr = C.newLocal(), I = C.newLocal(), Sum = C.newLocal();
  Label H = C.newLabel(), X = C.newLabel();
  C.load(0).newArrayInt().store(Arr);
  C.constI(0).store(I);
  C.bind(H);
  C.load(I).load(Arr).arrLen().ifGe(X);
  C.load(Arr).load(I).load(I).constI(2).mul().arrStoreInt();
  C.load(I).constI(1).add().store(I);
  C.gotoL(H);
  C.bind(X);
  C.load(Arr).constI(0).arrLoadInt();
  C.load(Arr).load(0).constI(1).sub().arrLoadInt().add().store(Sum);
  C.load(Sum).retInt();
  C.finish();
  verifyProgramOrDie(P);

  TestJit J(P);
  std::unique_ptr<Graph> G = J.build(M, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewArray), 1u);
  // arr[0] + arr[n-1] = 0 + 2(n-1).
  EXPECT_EQ(J.execute(*G, {Value::makeInt(10)}).asInt(), 18);
}

TEST(GraphBuilderTest, GraphsVerifyForAllTestPrograms) {
  {
    CacheProgram CP = makeCacheProgram(true);
    TestJit J(CP.P);
    for (unsigned M = 0; M != CP.P.numMethods(); ++M)
      EXPECT_TRUE(verifyGraph(*J.build(M, false)).empty()) << "method " << M;
  }
  {
    ShapesProgram SP = makeShapesProgram();
    TestJit J(SP.P);
    for (unsigned M = 0; M != SP.P.numMethods(); ++M)
      EXPECT_TRUE(verifyGraph(*J.build(M, false)).empty()) << "method " << M;
  }
}

} // namespace
