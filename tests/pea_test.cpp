//===- pea_test.cpp - Tests for partial escape analysis -----------------------===//
//
// Organized along the paper's figures: the node patterns of Figure 4, the
// escaped-store of Figure 5, the merge cases of Figure 6, the loop of
// Figure 7 and the frame-state handling of Figure 8 / Listing 8, plus the
// running example (Listings 4-6) end to end.
//
//===----------------------------------------------------------------------===//

#include "CompileTestHelpers.h"
#include "TestPrograms.h"
#include "pea/EquiEscapeSets.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testprogs;
using namespace jvm::testjit;

namespace {

/// A program with one method `f(int, ref) -> int/ref` assembled by the
/// given builder callback. Class T has fields {val:int, ref:ref}.
struct MiniProg {
  Program P;
  ClassId T = NoClass;
  FieldIndex ValF = -1, RefF = -1;
  StaticIndex GlobalRef = -1;
  MethodId F = NoMethod;
};

MiniProg
makeMini(ValueType RetTy,
         const std::function<void(MiniProg &, CodeBuilder &)> &Body) {
  MiniProg R;
  R.T = R.P.addClass("T");
  R.ValF = R.P.addField(R.T, "val", ValueType::Int);
  R.RefF = R.P.addField(R.T, "ref", ValueType::Ref);
  R.GlobalRef = R.P.addStatic("global", ValueType::Ref);
  R.F = R.P.addMethod("f", NoClass, {ValueType::Int, ValueType::Ref}, RetTy);
  CodeBuilder C(R.P, R.F);
  Body(R, C);
  C.finish();
  verifyProgramOrDie(R.P);
  return R;
}

//===----------------------------------------------------------------------===//
// Figure 4: operations on virtual objects
//===----------------------------------------------------------------------===//

TEST(PeaFig4Test, NonEscapingAllocationFullyScalarReplaced) {
  // (a)+(b): t = new T; t.val = x; return t.val + 1;
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    C.newObj(R.T).store(T);
    C.load(T).load(0).putField(R.T, R.ValF);
    C.load(T).getField(R.T, R.ValF).constI(1).add().retInt();
  });
  TestJit J(M.P);
  PEAStats St;
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, &St, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::StoreField), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::LoadField), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 0u);
  EXPECT_EQ(St.VirtualizedAllocations, 1u);
  EXPECT_EQ(St.ScalarReplacedLoads, 1u);
  EXPECT_EQ(St.ScalarReplacedStores, 1u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(41), Value::makeRef(nullptr)})
                .asInt(),
            42);
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
}

TEST(PeaFig4Test, MonitorOnVirtualObjectElided) {
  // (c)+(d): t = new T; synchronized(t) { t.val = x; } return t.val;
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    C.newObj(R.T).store(T);
    C.load(T).monEnter();
    C.load(T).load(0).putField(R.T, R.ValF);
    C.load(T).monExit();
    C.load(T).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  PEAStats St;
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, &St, false);
  EXPECT_EQ(countNodes(*G, NodeKind::MonitorEnter), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::MonitorExit), 0u);
  EXPECT_EQ(St.ElidedMonitorOps, 2u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(5), Value::makeRef(nullptr)})
                .asInt(),
            5);
  EXPECT_EQ(J.RT.metrics().MonitorOps, 0u);
}

TEST(PeaFig4Test, VirtualIntoVirtualStoreAndLoad) {
  // (e)+(f): a = new T; b = new T; a.ref = b; b2 = a.ref; b2.val = x;
  // return b.val  — everything virtual, result = x.
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned A = C.newLocal(), B = C.newLocal(), B2 = C.newLocal();
    C.newObj(R.T).store(A);
    C.newObj(R.T).store(B);
    C.load(A).load(B).putField(R.T, R.RefF);
    C.load(A).getField(R.T, R.RefF).store(B2);
    C.load(B2).load(0).putField(R.T, R.ValF);
    C.load(B).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(9), Value::makeRef(nullptr)})
                .asInt(),
            9);
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
}

TEST(PeaFig4Test, VirtualArrayScalarReplaced) {
  // arr = new int[2]; arr[0] = x; arr[1] = arr[0]+1; return
  // arr[1]*arr.length;
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned A = C.newLocal();
    C.constI(2).newArrayInt().store(A);
    C.load(A).constI(0).load(0).arrStoreInt();
    C.load(A).constI(1).load(A).constI(0).arrLoadInt().constI(1).add()
        .arrStoreInt();
    C.load(A).constI(1).arrLoadInt().load(A).arrLen().mul().retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewArray), 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(3), Value::makeRef(nullptr)})
                .asInt(),
            8);
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
}

TEST(PeaFig4Test, NonConstantLengthArrayNotVirtualized) {
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    (void)R;
    unsigned A = C.newLocal();
    C.load(0).newArrayInt().store(A);
    C.load(A).arrLen().retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewArray), 1u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(7), Value::makeRef(nullptr)})
                .asInt(),
            7);
}

//===----------------------------------------------------------------------===//
// Section 4 / Listings 4-6: the partial in partial escape analysis
//===----------------------------------------------------------------------===//

TEST(PeaPartialTest, EscapeOnlyInOneBranchMovesAllocation) {
  // t = new T; t.val = x;
  // if (x < 0) { global = t; return t.val; }  // escapes here only
  // return t.val;                              // stays virtual here
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    Label Skip = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(T).load(0).putField(R.T, R.ValF);
    C.load(0).constI(0).ifGe(Skip);
    C.load(T).putStatic(R.GlobalRef);
    C.load(T).getField(R.T, R.ValF).retInt();
    C.bind(Skip);
    C.load(T).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  PEAStats St;
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, &St, false);
  // The original allocation is gone; a Materialize sits in the escaping
  // branch only.
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 1u);
  EXPECT_GE(St.MaterializeSites, 1u);

  // Fast path: no allocation at all.
  EXPECT_EQ(J.execute(*G, {Value::makeInt(5), Value::makeRef(nullptr)})
                .asInt(),
            5);
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
  // Escaping path: exactly one allocation, visible through the global.
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-5), Value::makeRef(nullptr)})
                .asInt(),
            -5);
  EXPECT_EQ(J.RT.heap().allocationCount(), 1u);
  HeapObject *Escaped = J.RT.getStatic(M.GlobalRef).asRef();
  ASSERT_NE(Escaped, nullptr);
  EXPECT_EQ(Escaped->slot(M.ValF), Value::makeInt(-5));
}

TEST(PeaPartialTest, PaperGetValueExample) {
  // The full Listing 4 pipeline: inlining turns getValue into Listing 5,
  // PEA into Listing 6.
  CacheProgram CP = makeCacheProgram(/*UpdateCacheOnMiss=*/true);
  TestJit J(CP.P);
  // Warm up with both hits and misses (every second lookup repeats the
  // key) so equals is devirtualized and inlined but neither cache branch
  // is pruned.
  for (int I = 0; I != 40; ++I)
    J.interpret(CP.GetValue,
                {Value::makeInt((I / 2) % 3), Value::makeRef(nullptr)});
  PEAStats St;
  std::unique_ptr<Graph> G =
      J.buildWithEA(CP.GetValue, EscapeAnalysisMode::Partial, &St);
  // Listing 6: no allocation of Key on the hit path; the monitor of the
  // inlined synchronized equals is gone entirely.
  // All allocations are virtualized; the Key materializes only on the
  // miss path, and the Box of the inlined createValue materializes where
  // it escapes (stored to cacheValue). The synchronized equals loses its
  // monitor entirely.
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::MonitorEnter), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::MonitorExit), 0u);
  EXPECT_GE(St.ElidedMonitorOps, 2u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 2u);

  // Hit path allocates nothing and takes no locks.
  J.interpret(CP.GetValue, {Value::makeInt(7), Value::makeRef(nullptr)});
  J.RT.resetMetrics();
  Value Hit = J.execute(*G, {Value::makeInt(7), Value::makeRef(nullptr)});
  EXPECT_EQ(Hit.asRef()->slot(CP.BoxVal), Value::makeInt(7));
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
  EXPECT_EQ(J.RT.metrics().MonitorOps, 0u);

  // Miss path materializes the key and stores it in the cache.
  J.RT.resetMetrics();
  Value Miss = J.execute(*G, {Value::makeInt(8), Value::makeRef(nullptr)});
  EXPECT_EQ(Miss.asRef()->slot(CP.BoxVal), Value::makeInt(8));
  EXPECT_EQ(J.RT.heap().allocationCount(), 2u); // Key + Box.
  HeapObject *CachedKey = J.RT.getStatic(CP.CacheKey).asRef();
  ASSERT_NE(CachedKey, nullptr);
  EXPECT_EQ(CachedKey->slot(CP.KeyIdx), Value::makeInt(8));
}

TEST(PeaFig5Test, StoreIntoEscapedObjectUsesMaterializedValue) {
  // a = new T; global = a (escape); a.val = x; return a.val.
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned A = C.newLocal();
    C.newObj(R.T).store(A);
    C.load(A).putStatic(R.GlobalRef);
    C.load(A).load(0).putField(R.T, R.ValF);
    C.load(A).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  // Escapes immediately: materialized once, stores/loads hit the real
  // object.
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::StoreField), 1u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(3), Value::makeRef(nullptr)})
                .asInt(),
            3);
  EXPECT_EQ(J.RT.getStatic(M.GlobalRef).asRef()->slot(M.ValF),
            Value::makeInt(3));
}

//===----------------------------------------------------------------------===//
// Figure 6: merges
//===----------------------------------------------------------------------===//

TEST(PeaFig6Test, VirtualOnBothBranchesWithDifferingFieldsMakesPhi) {
  // t = new T; if (x<0) t.val = 1; else t.val = 2; return t.val;
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    Label Else = C.newLabel(), Done = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(0).constI(0).ifGe(Else);
    C.load(T).constI(1).putField(R.T, R.ValF);
    C.gotoL(Done);
    C.bind(Else);
    C.load(T).constI(2).putField(R.T, R.ValF);
    C.bind(Done);
    C.load(T).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-1), Value::makeRef(nullptr)})
                .asInt(),
            1);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(1), Value::makeRef(nullptr)})
                .asInt(),
            2);
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
}

TEST(PeaFig6Test, MixedVirtualEscapedMaterializesAtPredecessor) {
  // t = new T; t.val = x; if (x<0) global = t; /*merge*/ return t.val;
  // (same as the partial test but checks the executable merge behavior
  // through both paths repeatedly)
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    Label Skip = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(T).load(0).putField(R.T, R.ValF);
    C.load(0).constI(0).ifGe(Skip);
    C.load(T).putStatic(R.GlobalRef);
    C.bind(Skip);
    C.load(T).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  // t.val is read after the merge, so the object must exist on both
  // paths: PEA materializes it in each predecessor (never more than one
  // dynamic allocation per run, matching the paper's guarantee).
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 2u);
  for (int X : {-3, 4, -5, 6}) {
    int64_t Got =
        J.execute(*G, {Value::makeInt(X), Value::makeRef(nullptr)}).asInt();
    EXPECT_EQ(Got, X);
  }
  EXPECT_EQ(J.RT.heap().allocationCount(), 4u);
}

TEST(PeaFig6Test, PhiOverTwoDistinctVirtualsMaterializesBoth) {
  // if (x<0) t = new T(val=1); else t = new T(val=2); global = t;
  // return t.val — the phi forces materialization on both branches
  // (Figure 6 (c) otherwise-case).
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    Label Else = C.newLabel(), Done = C.newLabel();
    C.load(0).constI(0).ifGe(Else);
    C.newObj(R.T).store(T);
    C.load(T).constI(1).putField(R.T, R.ValF);
    C.gotoL(Done);
    C.bind(Else);
    C.newObj(R.T).store(T);
    C.load(T).constI(2).putField(R.T, R.ValF);
    C.bind(Done);
    C.load(T).putStatic(R.GlobalRef);
    C.load(T).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 2u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-1), Value::makeRef(nullptr)})
                .asInt(),
            1);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(1), Value::makeRef(nullptr)})
                .asInt(),
            2);
  EXPECT_EQ(J.RT.heap().allocationCount(), 2u);
}

TEST(PeaFig6Test, PhiOverSameVirtualStaysVirtual) {
  // t = new T; if (x<0) y = t; else y = t; return y.val — the builder's
  // phi has the same virtual alias on both inputs (Figure 6 (c)).
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal(), Y = C.newLocal();
    Label Else = C.newLabel(), Done = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(T).load(0).putField(R.T, R.ValF);
    C.load(0).constI(0).ifGe(Else);
    C.load(T).store(Y);
    C.gotoL(Done);
    C.bind(Else);
    C.load(T).store(Y);
    C.bind(Done);
    C.load(Y).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(2), Value::makeRef(nullptr)})
                .asInt(),
            2);
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Figure 7: loops
//===----------------------------------------------------------------------===//

TEST(PeaFig7Test, TemporaryPerIterationStaysVirtual) {
  ChurnProgram CP = makeChurnProgram();
  TestJit J(CP.P);
  PEAStats St;
  std::unique_ptr<Graph> G =
      J.buildWithEA(CP.SumBoxes, EscapeAnalysisMode::Partial, &St, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(1000)}).asInt(), 499500);
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
}

TEST(PeaFig7Test, AccumulatorObjectGetsLoopPhi) {
  // acc = new T; for (i=0; i<n; i++) acc.val = acc.val + i; return
  // acc.val — the field changes per iteration but the object stays
  // virtual thanks to a loop phi.
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned Acc = C.newLocal(), I = C.newLocal();
    Label Head = C.newLabel(), Exit = C.newLabel();
    C.newObj(R.T).store(Acc);
    C.constI(0).store(I);
    C.bind(Head);
    C.load(I).load(0).ifGe(Exit);
    C.load(Acc).load(Acc).getField(R.T, R.ValF).load(I).add()
        .putField(R.T, R.ValF);
    C.load(I).constI(1).add().store(I);
    C.gotoL(Head);
    C.bind(Exit);
    C.load(Acc).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  PEAStats St;
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, &St, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 0u);
  EXPECT_GE(St.LoopIterations, 1u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(10), Value::makeRef(nullptr)})
                .asInt(),
            45);
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
}

TEST(PeaFig7Test, EscapeInsideLoopMaterializesThere) {
  // for (i=0;i<n;i++) { t = new T; t.val = i; if (i == n-1) global = t; }
  // return 0 — only the last iteration's object is allocated.
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned I = C.newLocal(), T = C.newLocal();
    Label Head = C.newLabel(), Exit = C.newLabel(), NoEsc = C.newLabel();
    C.constI(0).store(I);
    C.bind(Head);
    C.load(I).load(0).ifGe(Exit);
    C.newObj(R.T).store(T);
    C.load(T).load(I).putField(R.T, R.ValF);
    C.load(I).load(0).constI(1).sub().ifNe(NoEsc);
    C.load(T).putStatic(R.GlobalRef);
    C.bind(NoEsc);
    C.load(I).constI(1).add().store(I);
    C.gotoL(Head);
    C.bind(Exit);
    C.constI(0).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 1u);
  J.execute(*G, {Value::makeInt(100), Value::makeRef(nullptr)});
  EXPECT_EQ(J.RT.heap().allocationCount(), 1u);
  EXPECT_EQ(J.RT.getStatic(M.GlobalRef).asRef()->slot(M.ValF),
            Value::makeInt(99));
}

TEST(PeaFig7Test, ObjectEscapingViaBackEdgeMaterializesAtEntry) {
  // t = new T; for (...) { u = new T; u.ref = t; t = u; } global = t —
  // a chain built through the loop; conservative handling materializes.
  MiniProg M = makeMini(ValueType::Ref, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal(), I = C.newLocal(), U = C.newLocal();
    Label Head = C.newLabel(), Exit = C.newLabel();
    C.newObj(R.T).store(T);
    C.constI(0).store(I);
    C.bind(Head);
    C.load(I).load(0).ifGe(Exit);
    C.newObj(R.T).store(U);
    C.load(U).load(T).putField(R.T, R.RefF);
    C.load(U).store(T);
    C.load(I).constI(1).add().store(I);
    C.gotoL(Head);
    C.bind(Exit);
    C.load(T).putStatic(R.GlobalRef);
    C.load(T).retRef();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  // Semantics check: chain of n+1 objects, innermost val default.
  Value R3 = J.execute(*G, {Value::makeInt(3), Value::makeRef(nullptr)});
  int Depth = 0;
  for (HeapObject *O = R3.asRef(); O; O = O->slot(M.RefF).asRef())
    ++Depth;
  EXPECT_EQ(Depth, 4);
  EXPECT_EQ(J.RT.heap().allocationCount(), 4u);
}

//===----------------------------------------------------------------------===//
// Equality / type-check folding (Section 5.2)
//===----------------------------------------------------------------------===//

TEST(PeaFoldTest, RefEqualityAgainstVirtualFolds) {
  // t = new T; if (t == p1) return 1; return 0  — never equal.
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    Label Eq = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(T).load(1).ifRefEq(Eq);
    C.constI(0).retInt();
    C.bind(Eq);
    C.constI(1).retInt();
  });
  TestJit J(M.P);
  PEAStats St;
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, &St, false);
  EXPECT_GE(St.FoldedChecks, 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::If), 0u); // Folded to straight line.
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(0), Value::makeRef(nullptr)})
                .asInt(),
            0);
}

TEST(PeaFoldTest, SameVirtualComparesEqual) {
  // t = new T; u = t; if (t == u) return 1; return 0.
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal(), U = C.newLocal();
    Label Eq = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(T).store(U);
    C.load(T).load(U).ifRefEq(Eq);
    C.constI(0).retInt();
    C.bind(Eq);
    C.constI(1).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(0), Value::makeRef(nullptr)})
                .asInt(),
            1);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
}

TEST(PeaFoldTest, InstanceOfOnVirtualFolds) {
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    C.newObj(R.T).store(T);
    C.load(T).instanceOf(R.T).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::InstanceOf), 0u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(0), Value::makeRef(nullptr)})
                .asInt(),
            1);
}

//===----------------------------------------------------------------------===//
// Figure 8 / Listing 8: frame states and deoptimization
//===----------------------------------------------------------------------===//

TEST(PeaFig8Test, FrameStatesReferenceVirtualObjects) {
  // t = new T; t.val = x; global = p1 (a store whose frame state must
  // describe the still-virtual t); return t.val.
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    C.newObj(R.T).store(T);
    C.load(T).load(0).putField(R.T, R.ValF);
    C.load(1).putStatic(R.GlobalRef);
    C.load(T).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  PEAStats St;
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, &St, false);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_GE(St.VirtualizedStates, 1u);
  // Some live frame state must carry a virtual object mapping.
  bool FoundMapping = false;
  for (unsigned Id = 0; Id != G->nodeIdBound(); ++Id)
    if (Node *N = G->nodeAt(Id))
      if (auto *FS = dyn_cast<FrameStateNode>(N))
        FoundMapping |= FS->numVirtualMappings() > 0;
  EXPECT_TRUE(FoundMapping);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(4), Value::makeRef(nullptr)})
                .asInt(),
            4);
}

TEST(PeaFig8Test, DeoptMaterializesVirtualObject) {
  // t = new T; t.val = x; if (x < 0) global = p1 (cold, pruned ->
  // Deoptimize with t virtual); return t.val.
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    Label Skip = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(T).load(0).putField(R.T, R.ValF);
    C.load(0).constI(0).ifGe(Skip);
    C.load(1).putStatic(R.GlobalRef);
    C.bind(Skip);
    C.load(T).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  J.Opts.PruneMinProfile = 10;
  for (int I = 1; I <= 20; ++I)
    J.interpret(M.F, {Value::makeInt(I), Value::makeRef(nullptr)});
  PEAStats St;
  std::unique_ptr<Graph> G =
      J.buildWithEA(M.F, EscapeAnalysisMode::Partial, &St);
  ASSERT_EQ(countNodes(*G, NodeKind::Deoptimize), 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Materialize), 0u);

  // Fast path: fully virtual.
  J.RT.resetMetrics();
  EXPECT_EQ(J.execute(*G, {Value::makeInt(6), Value::makeRef(nullptr)})
                .asInt(),
            6);
  EXPECT_EQ(J.RT.heap().allocationCount(), 0u);

  // Deopt path: the interpreter resumes with a freshly materialized T
  // whose val field was reconstructed from the frame state.
  J.RT.resetMetrics();
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-6), Value::makeRef(nullptr)})
                .asInt(),
            -6);
  EXPECT_EQ(J.RT.metrics().Deopts, 1u);
  EXPECT_EQ(J.RT.heap().allocationCount(), 1u);
}

TEST(PeaFig8Test, DeoptRestoresElidedLock) {
  // t = new T; monenter t; if (x<0) global = p1 (pruned); monexit t;
  // return x — deopt happens while the virtual lock is held.
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    Label Skip = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(T).monEnter();
    C.load(0).constI(0).ifGe(Skip);
    C.load(1).putStatic(R.GlobalRef);
    C.bind(Skip);
    C.load(T).monExit();
    C.load(0).retInt();
  });
  TestJit J(M.P);
  J.Opts.PruneMinProfile = 10;
  for (int I = 1; I <= 20; ++I)
    J.interpret(M.F, {Value::makeInt(I), Value::makeRef(nullptr)});
  std::unique_ptr<Graph> G = J.buildWithEA(M.F, EscapeAnalysisMode::Partial);
  ASSERT_EQ(countNodes(*G, NodeKind::Deoptimize), 1u);
  EXPECT_EQ(countNodes(*G, NodeKind::MonitorEnter), 0u);

  J.RT.resetMetrics();
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-2), Value::makeRef(nullptr)})
                .asInt(),
            -2);
  EXPECT_EQ(J.RT.metrics().Deopts, 1u);
  // The deoptimizer re-acquired the elided lock (1 op) and the
  // interpreter then released it (1 op).
  EXPECT_EQ(J.RT.metrics().MonitorOps, 2u);
}

//===----------------------------------------------------------------------===//
// Flow-insensitive baseline (Section 6.2)
//===----------------------------------------------------------------------===//

TEST(EesTest, EscapingAllocationsDetected) {
  CacheProgram CP = makeCacheProgram(true);
  TestJit J(CP.P);
  std::unique_ptr<Graph> G = J.buildOptimized(CP.GetValue, false);
  std::set<const Node *> Escaping = computeEscapingAllocations(*G);
  // The Key escapes (store into cacheKey on the miss path).
  unsigned Allocs = countNodes(*G, NodeKind::NewInstance);
  EXPECT_GE(Allocs, 1u);
  EXPECT_GE(Escaping.size(), 1u);
}

TEST(EesTest, NonEscapingChurnDetected) {
  ChurnProgram CP = makeChurnProgram();
  TestJit J(CP.P);
  std::unique_ptr<Graph> G = J.buildOptimized(CP.SumBoxes, false);
  EXPECT_TRUE(computeEscapingAllocations(*G).empty());
}

TEST(EesTest, AllOrNothingKeepsPartiallyEscapingAllocation) {
  // The paper's core discriminator: escapes in one branch only, with the
  // branches returning separately (Listing 4 shape).
  MiniProg M = makeMini(ValueType::Int, [](MiniProg &R, CodeBuilder &C) {
    unsigned T = C.newLocal();
    Label Skip = C.newLabel();
    C.newObj(R.T).store(T);
    C.load(T).load(0).putField(R.T, R.ValF);
    C.load(0).constI(0).ifGe(Skip);
    C.load(T).putStatic(R.GlobalRef);
    C.load(T).getField(R.T, R.ValF).retInt();
    C.bind(Skip);
    C.load(T).getField(R.T, R.ValF).retInt();
  });
  TestJit J(M.P);
  std::unique_ptr<Graph> Baseline =
      J.buildWithEA(M.F, EscapeAnalysisMode::FlowInsensitive, nullptr, false);
  // All-or-nothing: the allocation survives on every path.
  EXPECT_EQ(countNodes(*Baseline, NodeKind::NewInstance), 1u);
  EXPECT_EQ(countNodes(*Baseline, NodeKind::Materialize), 0u);

  TestJit J2(M.P);
  std::unique_ptr<Graph> Partial =
      J2.buildWithEA(M.F, EscapeAnalysisMode::Partial, nullptr, false);
  EXPECT_EQ(countNodes(*Partial, NodeKind::NewInstance), 0u);

  // Same semantics, different allocation counts on the fast path.
  EXPECT_EQ(J.execute(*Baseline, {Value::makeInt(5), Value::makeRef(nullptr)})
                .asInt(),
            5);
  EXPECT_EQ(J.RT.heap().allocationCount(), 1u);
  EXPECT_EQ(J2.execute(*Partial, {Value::makeInt(5), Value::makeRef(nullptr)})
                .asInt(),
            5);
  EXPECT_EQ(J2.RT.heap().allocationCount(), 0u);
}

TEST(EesTest, BothModesScalarReplaceNeverEscaping) {
  ChurnProgram CP = makeChurnProgram();
  for (EscapeAnalysisMode Mode : {EscapeAnalysisMode::FlowInsensitive,
                                  EscapeAnalysisMode::Partial}) {
    TestJit J(CP.P);
    std::unique_ptr<Graph> G = J.buildWithEA(CP.SumBoxes, Mode, nullptr,
                                             false);
    EXPECT_EQ(countNodes(*G, NodeKind::NewInstance), 0u)
        << escapeAnalysisModeName(Mode);
    EXPECT_EQ(J.execute(*G, {Value::makeInt(50)}).asInt(), 1225);
    EXPECT_EQ(J.RT.heap().allocationCount(), 0u);
  }
}

//===----------------------------------------------------------------------===//
// Differential safety net: PEA must never change semantics and never
// increase dynamic allocations.
//===----------------------------------------------------------------------===//

struct DiffCase {
  const char *Name;
  int Warmups;
};

class PeaDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(PeaDifferentialTest, CacheWorkloadAcrossModes) {
  int Mix = GetParam();
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::FlowInsensitive,
        EscapeAnalysisMode::Partial}) {
    CacheProgram CP = makeCacheProgram(true);
    TestJit J(CP.P);
    for (int I = 0; I != 25; ++I)
      J.interpret(CP.GetValue,
                  {Value::makeInt(I % (Mix + 1)), Value::makeRef(nullptr)});
    std::unique_ptr<Graph> G = J.buildWithEA(CP.GetValue, Mode);
    // Reference run in a fresh interpreter-only VM.
    CacheProgram Ref = makeCacheProgram(true);
    TestJit JRef(Ref.P);
    for (int I = 0; I != 40; ++I) {
      int K = (I * 7 + 3) % (Mix + 2);
      Value Got =
          J.execute(*G, {Value::makeInt(K), Value::makeRef(nullptr)});
      Value Want = JRef.interpret(
          Ref.GetValue, {Value::makeInt(K), Value::makeRef(nullptr)});
      ASSERT_EQ(Got.asRef()->slot(CP.BoxVal), Want.asRef()->slot(Ref.BoxVal))
          << "mode=" << escapeAnalysisModeName(Mode) << " i=" << I;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Mixes, PeaDifferentialTest,
                         ::testing::Values(1, 2, 5, 9));

TEST(PeaSafetyTest, AllocationCountNeverIncreases) {
  CacheProgram CP = makeCacheProgram(true);
  uint64_t Allocs[2];
  int ModeIdx = 0;
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::Partial}) {
    TestJit J(CP.P);
    for (int I = 0; I != 25; ++I)
      J.interpret(CP.GetValue, {Value::makeInt(I % 3), Value::makeRef(nullptr)});
    std::unique_ptr<Graph> G = J.buildWithEA(CP.GetValue, Mode);
    J.RT.resetMetrics();
    for (int I = 0; I != 60; ++I)
      J.execute(*G, {Value::makeInt(I % 4), Value::makeRef(nullptr)});
    Allocs[ModeIdx++] = J.RT.heap().allocationCount();
  }
  EXPECT_LE(Allocs[1], Allocs[0]);
}

} // namespace
