//===- executor_test.cpp - Direct GraphExecutor coverage -----------------------===//
//
// Hand-built graphs exercising each executor behaviour in isolation:
// node semantics, phi transfer (including the swap problem), group
// materialization with cyclic references, lock re-acquisition, and the
// deoptimization bridge.
//
//===----------------------------------------------------------------------===//

#include "ir/Graph.h"
#include "ir/Verifier.h"
#include "vm/GraphExecutor.h"

#include <gtest/gtest.h>

using namespace jvm;

namespace {

struct ExecFixture {
  Program P;
  ClassId Cls = NoClass;
  FieldIndex F0 = -1, F1 = -1;
  StaticIndex G0 = -1;

  std::unique_ptr<Runtime> RT;
  std::vector<std::pair<MethodId, std::vector<Value>>> Calls;
  std::vector<DeoptRequest> Deopts;
  Value DeoptResult = Value::makeInt(-7);

  ExecFixture() {
    Cls = P.addClass("C");
    F0 = P.addField(Cls, "f0", ValueType::Int);
    F1 = P.addField(Cls, "f1", ValueType::Ref);
    G0 = P.addStatic("g0", ValueType::Ref);
    // A callee the executor can invoke: neg(x) = 0 - x. Dispatched via
    // the call handler below, which services it directly in C++.
    P.addMethod("neg", NoClass, {ValueType::Int}, ValueType::Int);
    RT = std::make_unique<Runtime>(P);
  }

  Value execute(const Graph &G, std::vector<Value> Args) {
    GraphExecutor Ex(
        *RT,
        [this](MethodId Target, std::vector<Value> &&A) {
          Calls.push_back({Target, A});
          return Value::makeInt(-A[0].asInt());
        },
        [this](DeoptRequest &&Req) {
          Deopts.push_back(std::move(Req));
          return DeoptResult;
        });
    Runtime::RootScope Roots(*RT, &Args);
    return Ex.execute(G, Args);
  }
};

TEST(ExecutorTest, ArithmeticExpressionTree) {
  ExecFixture F;
  Graph G(0, {ValueType::Int, ValueType::Int});
  auto *Add = G.create<ArithNode>(ArithKind::Add, G.param(0), G.param(1));
  auto *Mul = G.create<ArithNode>(ArithKind::Mul, Add, Add);
  auto *Ret = G.create<ReturnNode>(Mul);
  G.start()->setNext(Ret);
  EXPECT_EQ(F.execute(G, {Value::makeInt(3), Value::makeInt(4)}).asInt(), 49);
}

TEST(ExecutorTest, PhiSwapProblemHandled) {
  // Loop that swaps two phis each iteration; requires simultaneous
  // assignment semantics. 3 iterations starting from (a=1, b=2).
  Graph G(0, {ValueType::Int});
  auto *FwdEnd = G.create<EndNode>();
  G.start()->setNext(FwdEnd);
  auto *Loop = G.create<LoopBeginNode>();
  Loop->addEnd(FwdEnd);
  auto *A = G.create<PhiNode>(Loop, ValueType::Int);
  auto *B = G.create<PhiNode>(Loop, ValueType::Int);
  auto *I = G.create<PhiNode>(Loop, ValueType::Int);
  A->appendValue(G.intConstant(1));
  B->appendValue(G.intConstant(2));
  I->appendValue(G.intConstant(0));
  auto *Cond = G.create<CompareNode>(CmpKind::IntLt, I, G.param(0));
  auto *If = G.create<IfNode>(Cond);
  Loop->setNext(If);
  auto *Body = G.create<BeginNode>();
  auto *ExitB = G.create<BeginNode>();
  If->setTrueSuccessor(Body);
  If->setFalseSuccessor(ExitB);
  auto *Back = G.create<LoopEndNode>(Loop);
  Body->setNext(Back);
  Loop->addBackEdge(Back);
  A->appendValue(B); // a' = b
  B->appendValue(A); // b' = a  (the swap)
  I->appendValue(G.create<ArithNode>(ArithKind::Add, I, G.intConstant(1)));
  auto *Exit = G.create<LoopExitNode>(Loop);
  ExitB->setNext(Exit);
  // Return a*10 + b.
  auto *Enc = G.create<ArithNode>(
      ArithKind::Add, G.create<ArithNode>(ArithKind::Mul, A,
                                          G.intConstant(10)), B);
  auto *Ret = G.create<ReturnNode>(Enc);
  Exit->setNext(Ret);
  verifyGraphOrDie(G);

  ExecFixture F;
  // After 3 swaps: (a,b) = (2,1); encoded 21.
  EXPECT_EQ(F.execute(G, {Value::makeInt(3)}).asInt(), 21);
  // After 4 swaps: back to (1,2); encoded 12.
  EXPECT_EQ(F.execute(G, {Value::makeInt(4)}).asInt(), 12);
}

TEST(ExecutorTest, InvokeDispatchesThroughHandler) {
  ExecFixture F;
  Graph G(0, {ValueType::Int});
  auto *FS = G.create<FrameStateNode>(0, 0, false, 1, 0, 0);
  FS->setLocalAt(0, G.param(0));
  auto *Call = G.create<InvokeNode>(CallKind::Static, /*neg=*/0,
                                    ValueType::Int,
                                    std::vector<Node *>{G.param(0)}, FS);
  G.start()->setNext(Call);
  auto *Ret = G.create<ReturnNode>(Call);
  Call->setNext(Ret);
  EXPECT_EQ(F.execute(G, {Value::makeInt(11)}).asInt(), -11);
  ASSERT_EQ(F.Calls.size(), 1u);
  EXPECT_EQ(F.Calls[0].first, 0);
}

TEST(ExecutorTest, MaterializeCyclicPair) {
  // Commit of two objects referencing each other: a.f1 = b, b.f1 = a.
  ExecFixture F;
  Graph G(0, {ValueType::Int});
  auto *Commit = G.create<MaterializeNode>(nullptr);
  auto *VA = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  auto *VB = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  Commit->addObject(VA, {G.param(0), VB}, 0);
  Commit->addObject(VB, {G.intConstant(9), VA}, 0);
  auto *AO = G.create<AllocatedObjectNode>(Commit, 0);
  G.start()->setNext(Commit);
  auto *Ret = G.create<ReturnNode>(AO);
  Commit->setNext(Ret);
  verifyGraphOrDie(G);

  Value R = F.execute(G, {Value::makeInt(5)});
  HeapObject *A = R.asRef();
  ASSERT_NE(A, nullptr);
  HeapObject *B = A->slot(F.F1).asRef();
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(A->slot(F.F0), Value::makeInt(5));
  EXPECT_EQ(B->slot(F.F0), Value::makeInt(9));
  EXPECT_EQ(B->slot(F.F1).asRef(), A); // The cycle closed.
  EXPECT_EQ(F.RT->heap().allocationCount(), 2u);
}

TEST(ExecutorTest, MaterializeSelfReferenceFastPath) {
  // Single-object commit whose entry references itself (a.f1 = a).
  ExecFixture F;
  Graph G(0, {});
  auto *Commit = G.create<MaterializeNode>(nullptr);
  auto *VA = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  Commit->addObject(VA, {G.intConstant(1), VA}, 0);
  auto *AO = G.create<AllocatedObjectNode>(Commit, 0);
  G.start()->setNext(Commit);
  auto *Ret = G.create<ReturnNode>(AO);
  Commit->setNext(Ret);
  Value R = F.execute(G, {});
  EXPECT_EQ(R.asRef()->slot(F.F1).asRef(), R.asRef());
}

TEST(ExecutorTest, MaterializeWithLockDepth) {
  ExecFixture F;
  Graph G(0, {});
  auto *Commit = G.create<MaterializeNode>(nullptr);
  auto *VA = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  Commit->addObject(VA, {G.intConstant(0), G.nullConstant()}, 2);
  auto *AO = G.create<AllocatedObjectNode>(Commit, 0);
  G.start()->setNext(Commit);
  auto *Ret = G.create<ReturnNode>(AO);
  Commit->setNext(Ret);
  Value R = F.execute(G, {});
  EXPECT_EQ(R.asRef()->lockCount(), 2);
  EXPECT_EQ(F.RT->metrics().MonitorOps, 2u);
}

TEST(ExecutorTest, MaterializeVirtualArray) {
  ExecFixture F;
  Graph G(0, {ValueType::Int});
  auto *Commit = G.create<MaterializeNode>(nullptr);
  auto *VA = G.create<VirtualObjectNode>(NoClass, /*IsArray=*/true,
                                         ValueType::Int, 3);
  Commit->addObject(VA, {G.param(0), G.intConstant(7), G.intConstant(8)}, 0);
  auto *AO = G.create<AllocatedObjectNode>(Commit, 0);
  G.start()->setNext(Commit);
  auto *Ret = G.create<ReturnNode>(AO);
  Commit->setNext(Ret);
  Value R = F.execute(G, {Value::makeInt(6)});
  ASSERT_TRUE(R.asRef()->isArray());
  EXPECT_EQ(R.asRef()->length(), 3);
  EXPECT_EQ(R.asRef()->slot(0), Value::makeInt(6));
  EXPECT_EQ(R.asRef()->slot(2), Value::makeInt(8));
}

TEST(ExecutorTest, DeoptBuildsFramesInnermostFirst) {
  ExecFixture F;
  Graph G(0, {ValueType::Int});
  auto *Outer = G.create<FrameStateNode>(/*Method=*/0, /*Bci=*/4, false,
                                         1, 1, 0);
  Outer->setLocalAt(0, G.param(0));
  Outer->setStackAt(0, G.intConstant(40));
  auto *Inner = G.create<FrameStateNode>(/*Method=*/1, /*Bci=*/2, true,
                                         2, 0, 0);
  Inner->setLocalAt(0, G.param(0));
  Inner->setLocalAt(1, G.intConstant(5));
  Inner->setOuter(Outer);
  auto *Deopt =
      G.create<DeoptimizeNode>(DeoptReason::BranchNeverTaken, Inner);
  G.start()->setNext(Deopt);

  Value R = F.execute(G, {Value::makeInt(3)});
  EXPECT_EQ(R, F.DeoptResult);
  ASSERT_EQ(F.Deopts.size(), 1u);
  const DeoptRequest &Req = F.Deopts[0];
  EXPECT_EQ(Req.Reason, DeoptReason::BranchNeverTaken);
  ASSERT_EQ(Req.Frames.size(), 2u);
  EXPECT_EQ(Req.Frames[0].Method, 1);
  EXPECT_TRUE(Req.Frames[0].Reexecute);
  EXPECT_EQ(Req.Frames[0].Locals[1], Value::makeInt(5));
  EXPECT_EQ(Req.Frames[1].Method, 0);
  EXPECT_FALSE(Req.Frames[1].Reexecute);
  EXPECT_EQ(Req.Frames[1].Stack[0], Value::makeInt(40));
}

TEST(ExecutorTest, DeoptMaterializesNestedVirtualObjects) {
  // A frame state mapping two virtual objects where one's entry
  // references the other: both must exist after deopt, linked.
  ExecFixture F;
  Graph G(0, {ValueType::Int});
  auto *FS = G.create<FrameStateNode>(0, 0, true, 1, 0, 0);
  auto *VA = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  auto *VB = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  FS->setLocalAt(0, VA);
  FS->addVirtualMapping(VA, {G.param(0), VB}, 0);
  FS->addVirtualMapping(VB, {G.intConstant(2), G.nullConstant()}, 1);
  auto *Deopt = G.create<DeoptimizeNode>(DeoptReason::TypeGuardFailed, FS);
  G.start()->setNext(Deopt);

  F.execute(G, {Value::makeInt(1)});
  ASSERT_EQ(F.Deopts.size(), 1u);
  HeapObject *A = F.Deopts[0].Frames[0].Locals[0].asRef();
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->slot(F.F0), Value::makeInt(1));
  HeapObject *B = A->slot(F.F1).asRef();
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->slot(F.F0), Value::makeInt(2));
  EXPECT_EQ(B->lockCount(), 1); // Elided lock re-acquired.
  EXPECT_EQ(F.RT->heap().allocationCount(), 2u);
}

TEST(ExecutorTest, DeoptDeadSlotsDefaultToZero) {
  ExecFixture F;
  Graph G(0, {});
  auto *FS = G.create<FrameStateNode>(0, 0, true, 2, 0, 0);
  FS->setLocalAt(0, G.intConstant(1)); // Local 1 stays dead (null).
  auto *Deopt = G.create<DeoptimizeNode>(DeoptReason::BranchNeverTaken, FS);
  G.start()->setNext(Deopt);
  F.execute(G, {});
  ASSERT_EQ(F.Deopts.size(), 1u);
  EXPECT_EQ(F.Deopts[0].Frames[0].Locals[1], Value::makeInt(0));
}

TEST(ExecutorTest, StaticsAndMonitors) {
  ExecFixture F;
  Graph G(0, {});
  auto *New = G.create<NewInstanceNode>(F.Cls, 2);
  G.start()->setNext(New);
  auto *FS = G.create<FrameStateNode>(0, 0, false, 0, 0, 0);
  auto *Enter = G.create<MonitorEnterNode>(New, FS);
  New->setNext(Enter);
  auto *Store = G.create<StoreStaticNode>(F.G0, New, FS);
  Enter->setNext(Store);
  auto *Exit = G.create<MonitorExitNode>(New, FS);
  Store->setNext(Exit);
  auto *Load = G.create<LoadStaticNode>(F.G0, ValueType::Ref);
  Exit->setNext(Load);
  auto *Ret = G.create<ReturnNode>(Load);
  Load->setNext(Ret);
  Value R = F.execute(G, {});
  EXPECT_EQ(R.asRef(), F.RT->getStatic(F.G0).asRef());
  EXPECT_EQ(F.RT->metrics().MonitorOps, 2u);
  EXPECT_EQ(R.asRef()->lockCount(), 0);
}

TEST(ExecutorTest, CompareAndInstanceOfSemantics) {
  ExecFixture F;
  Graph G(0, {ValueType::Ref});
  // Return instanceof(C)(p0)*4 + isnull(p0)*2 + refeq(p0, null).
  auto *IO = G.create<InstanceOfNode>(F.Cls, false, G.param(0));
  auto *IsN = G.create<CompareNode>(CmpKind::IsNull, G.param(0), nullptr);
  auto *Eq =
      G.create<CompareNode>(CmpKind::RefEq, G.param(0), G.nullConstant());
  auto *E1 = G.create<ArithNode>(ArithKind::Mul, IO, G.intConstant(4));
  auto *E2 = G.create<ArithNode>(ArithKind::Mul, IsN, G.intConstant(2));
  auto *Sum = G.create<ArithNode>(
      ArithKind::Add, G.create<ArithNode>(ArithKind::Add, E1, E2), Eq);
  auto *Ret = G.create<ReturnNode>(Sum);
  G.start()->setNext(Ret);

  EXPECT_EQ(F.execute(G, {Value::makeRef(nullptr)}).asInt(), 3);
  HeapObject *O = F.RT->allocateInstance(F.Cls);
  std::vector<Value> Args{Value::makeRef(O)};
  Runtime::RootScope Roots(*F.RT, &Args);
  EXPECT_EQ(F.execute(G, Args).asInt(), 4);
}

} // namespace
