//===- phases_test.cpp - Canonicalizer, GVN, DCE tests ------------------------===//

#include "CompileTestHelpers.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testprogs;
using namespace jvm::testjit;

namespace {

TEST(CanonicalizerTest, FoldsConstantArithmetic) {
  Graph G(0, {});
  auto *Add = G.create<ArithNode>(ArithKind::Add, G.intConstant(2),
                                  G.intConstant(3));
  auto *Ret = G.create<ReturnNode>(Add);
  G.start()->setNext(Ret);
  Program P;
  EXPECT_TRUE(canonicalize(G, P));
  auto *C = dyn_cast<ConstantIntNode>(Ret->value());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->value(), 5);
}

struct IdentityCase {
  ArithKind Op;
  int64_t ConstOperand;
  bool ConstOnLeft;
};

class ArithIdentityTest : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(ArithIdentityTest, IdentityFoldsToOperand) {
  const IdentityCase &IC = GetParam();
  Graph G(0, {ValueType::Int});
  Node *X = G.param(0);
  Node *C = G.intConstant(IC.ConstOperand);
  auto *Op = IC.ConstOnLeft ? G.create<ArithNode>(IC.Op, C, X)
                            : G.create<ArithNode>(IC.Op, X, C);
  auto *Ret = G.create<ReturnNode>(Op);
  G.start()->setNext(Ret);
  Program P;
  canonicalize(G, P);
  EXPECT_EQ(Ret->value(), X);
}

INSTANTIATE_TEST_SUITE_P(
    Identities, ArithIdentityTest,
    ::testing::Values(IdentityCase{ArithKind::Add, 0, false},
                      IdentityCase{ArithKind::Add, 0, true},
                      IdentityCase{ArithKind::Sub, 0, false},
                      IdentityCase{ArithKind::Mul, 1, false},
                      IdentityCase{ArithKind::Mul, 1, true},
                      IdentityCase{ArithKind::Div, 1, false},
                      IdentityCase{ArithKind::Shl, 0, false},
                      IdentityCase{ArithKind::Shr, 0, false}));

TEST(CanonicalizerTest, RefEqualityOnDistinctAllocations) {
  Graph G(0, {});
  auto *A = G.create<NewInstanceNode>(0, 1);
  auto *B = G.create<NewInstanceNode>(0, 1);
  G.start()->setNext(A);
  A->setNext(B);
  auto *Cmp = G.create<CompareNode>(CmpKind::RefEq, A, B);
  auto *Ret = G.create<ReturnNode>(Cmp);
  B->setNext(Ret);
  Program P;
  canonicalize(G, P);
  auto *C = dyn_cast<ConstantIntNode>(Ret->value());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->value(), 0);
}

TEST(CanonicalizerTest, IsNullOnAllocationIsFalse) {
  Graph G(0, {});
  auto *A = G.create<NewInstanceNode>(0, 1);
  G.start()->setNext(A);
  auto *Cmp = G.create<CompareNode>(CmpKind::IsNull, A, nullptr);
  auto *Ret = G.create<ReturnNode>(Cmp);
  A->setNext(Ret);
  Program P;
  canonicalize(G, P);
  auto *C = dyn_cast<ConstantIntNode>(Ret->value());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->value(), 0);
}

TEST(CanonicalizerTest, InstanceOfFoldsOnExactAllocation) {
  Program P;
  ClassId Base = P.addClass("Base");
  ClassId Derived = P.addClass("Derived", Base);
  Graph G(0, {});
  auto *A = G.create<NewInstanceNode>(Derived, 0);
  G.start()->setNext(A);
  auto *IOSub = G.create<InstanceOfNode>(Base, /*Exact=*/false, A);
  auto *IOExact = G.create<InstanceOfNode>(Base, /*Exact=*/true, A);
  auto *Sum = G.create<ArithNode>(ArithKind::Add, IOSub, IOExact);
  auto *Ret = G.create<ReturnNode>(Sum);
  A->setNext(Ret);
  canonicalize(G, P);
  // Subtype check true (1), exact check false (0): sum folds to 1.
  auto *C = dyn_cast<ConstantIntNode>(Ret->value());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->value(), 1);
}

TEST(CanonicalizerTest, ConstantIfFoldsAndSweeps) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  // abs(x) has If(x < 0). Build a wrapper equivalent by rewriting the
  // graph: force the condition to a constant and expect a straight line.
  std::unique_ptr<Graph> G = J.build(MP.Abs, false);
  for (unsigned Id = 0; Id != G->nodeIdBound(); ++Id)
    if (Node *N = G->nodeAt(Id))
      if (auto *If = dyn_cast<IfNode>(N))
        If->setCondition(G->intConstant(0));
  canonicalize(*G, MP.P);
  verifyGraphOrDie(*G);
  EXPECT_EQ(countNodes(*G, NodeKind::If), 0u);
  EXPECT_EQ(countNodes(*G, NodeKind::Return), 1u);
  EXPECT_EQ(J.execute(*G, {Value::makeInt(-3)}).asInt(), -3); // False path.
}

TEST(CanonicalizerTest, TrivialPhiRemoved) {
  // Diamond where both sides produce the same value.
  Graph G(0, {ValueType::Int});
  auto *If = G.create<IfNode>(G.param(0));
  G.start()->setNext(If);
  auto *TB = G.create<BeginNode>();
  auto *FB = G.create<BeginNode>();
  If->setTrueSuccessor(TB);
  If->setFalseSuccessor(FB);
  auto *E1 = G.create<EndNode>();
  auto *E2 = G.create<EndNode>();
  TB->setNext(E1);
  FB->setNext(E2);
  auto *M = G.create<MergeNode>();
  M->addEnd(E1);
  M->addEnd(E2);
  auto *Phi = G.create<PhiNode>(M, ValueType::Int);
  Phi->appendValue(G.intConstant(7));
  Phi->appendValue(G.intConstant(7));
  auto *Ret = G.create<ReturnNode>(Phi);
  M->setNext(Ret);
  Program P;
  canonicalize(G, P);
  EXPECT_EQ(Ret->value(), G.intConstant(7));
}

TEST(GVNTest, DeduplicatesPureExpressions) {
  Graph G(0, {ValueType::Int, ValueType::Int});
  auto *A1 = G.create<ArithNode>(ArithKind::Add, G.param(0), G.param(1));
  auto *A2 = G.create<ArithNode>(ArithKind::Add, G.param(0), G.param(1));
  auto *M = G.create<ArithNode>(ArithKind::Mul, A1, A2);
  auto *Ret = G.create<ReturnNode>(M);
  G.start()->setNext(Ret);
  EXPECT_TRUE(runGVN(G));
  EXPECT_EQ(M->x(), M->y());
  EXPECT_TRUE(A1->isDeleted() != A2->isDeleted());
}

TEST(GVNTest, TransitiveDeduplication) {
  Graph G(0, {ValueType::Int});
  // (x+1)+2 twice, built from distinct sub-expressions.
  auto *I1 = G.create<ArithNode>(ArithKind::Add, G.param(0), G.intConstant(1));
  auto *I2 = G.create<ArithNode>(ArithKind::Add, G.param(0), G.intConstant(1));
  auto *O1 = G.create<ArithNode>(ArithKind::Add, I1, G.intConstant(2));
  auto *O2 = G.create<ArithNode>(ArithKind::Add, I2, G.intConstant(2));
  auto *M = G.create<ArithNode>(ArithKind::Mul, O1, O2);
  auto *Ret = G.create<ReturnNode>(M);
  G.start()->setNext(Ret);
  runGVN(G);
  EXPECT_EQ(M->x(), M->y());
  (void)Ret;
}

TEST(GVNTest, DifferentOpsNotMerged) {
  Graph G(0, {ValueType::Int, ValueType::Int});
  auto *A = G.create<ArithNode>(ArithKind::Add, G.param(0), G.param(1));
  auto *S = G.create<ArithNode>(ArithKind::Sub, G.param(0), G.param(1));
  auto *M = G.create<ArithNode>(ArithKind::Mul, A, S);
  auto *Ret = G.create<ReturnNode>(M);
  G.start()->setNext(Ret);
  runGVN(G);
  EXPECT_NE(M->x(), M->y());
  (void)Ret;
}

TEST(DCETest, RemovesUnusedFloatingNodes) {
  Graph G(0, {ValueType::Int});
  auto *Dead = G.create<ArithNode>(ArithKind::Add, G.param(0),
                                   G.intConstant(1));
  auto *Ret = G.create<ReturnNode>(G.param(0));
  G.start()->setNext(Ret);
  unsigned Before = G.numLiveNodes();
  EXPECT_TRUE(eliminateDeadCode(G));
  EXPECT_TRUE(Dead->isDeleted());
  EXPECT_LT(G.numLiveNodes(), Before);
}

TEST(DCETest, RemovesUnusedAllocationAndLoads) {
  ChurnProgram CP = makeChurnProgram();
  // Hand-build: allocate a Box, store into it, never use the loads.
  Graph G(0, {});
  auto *New = G.create<NewInstanceNode>(CP.Box, 1);
  G.start()->setNext(New);
  auto *Load = G.create<LoadFieldNode>(CP.Box, 0, ValueType::Int, New);
  New->setNext(Load);
  auto *Ret = G.create<ReturnNode>(G.intConstant(0));
  Load->setNext(Ret);
  EXPECT_TRUE(eliminateDeadCode(G));
  EXPECT_TRUE(Load->isDeleted());
  EXPECT_TRUE(New->isDeleted());
  EXPECT_EQ(G.start()->next(), Ret);
}

TEST(DCETest, KeepsSideEffectingNodes) {
  CacheProgram CP = makeCacheProgram(true);
  TestJit J(CP.P);
  std::unique_ptr<Graph> G = J.build(CP.GetValue, false);
  unsigned Stores = countNodes(*G, NodeKind::StoreField);
  unsigned Monitors = countNodes(*G, NodeKind::MonitorEnter);
  eliminateDeadCode(*G);
  EXPECT_EQ(countNodes(*G, NodeKind::StoreField), Stores);
  EXPECT_EQ(countNodes(*G, NodeKind::MonitorEnter), Monitors);
}

TEST(DCETest, ParametersSurviveUnused) {
  Graph G(0, {ValueType::Int, ValueType::Int});
  auto *Ret = G.create<ReturnNode>(G.param(0));
  G.start()->setNext(Ret);
  eliminateDeadCode(G);
  EXPECT_FALSE(G.param(1)->isDeleted());
}

TEST(PipelineTest, OptimizedGraphsStaySemanticallyEqual) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  J.warmup(MP.SumTo, {Value::makeInt(50)}, 30);
  std::unique_ptr<Graph> G = J.buildOptimized(MP.SumTo);
  for (int N : {0, 1, 7, 100})
    EXPECT_EQ(J.execute(*G, {Value::makeInt(N)}).asInt(),
              J.interpret(MP.SumTo, {Value::makeInt(N)}).asInt())
        << "n=" << N;
}

} // namespace
