//===- TestPrograms.h - Shared mini-Java programs for tests --------*- C++ -*-===//
///
/// \file
/// Canonical programs used across the test suite, including the paper's
/// running example (Listings 1 and 4: the Key cache with a synchronized
/// equals method).
///
//===----------------------------------------------------------------------===//

#ifndef JVM_TESTS_TESTPROGRAMS_H
#define JVM_TESTS_TESTPROGRAMS_H

#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"
#include "bytecode/Program.h"

namespace jvm {
namespace testprogs {

/// The paper's running example:
///
///   class Key { int idx; Object ref;
///     synchronized boolean equals(Key other) {
///       return idx == other.idx && ref == other.ref; } }
///   static Key cacheKey;  static Object cacheValue;
///
///   Object getValue(int idx, Object ref) {
///     Key key = new Key(idx, ref);
///     if (cacheKey != null && key.equals(cacheKey)) return cacheValue;
///     if (UpdateCacheOnMiss) cacheKey = key;           // Listing 4 variant
///     cacheValue = createValue(idx);  return cacheValue; }
struct CacheProgram {
  Program P;
  ClassId Key = NoClass;
  ClassId Box = NoClass;
  FieldIndex KeyIdx = -1, KeyRef = -1, BoxVal = -1;
  StaticIndex CacheKey = -1, CacheValue = -1;
  MethodId Equals = NoMethod, GetValue = NoMethod, CreateValue = NoMethod;
};

inline CacheProgram makeCacheProgram(bool UpdateCacheOnMiss) {
  CacheProgram R;
  Program &P = R.P;
  R.Key = P.addClass("Key");
  R.KeyIdx = P.addField(R.Key, "idx", ValueType::Int);
  R.KeyRef = P.addField(R.Key, "ref", ValueType::Ref);
  R.Box = P.addClass("Box");
  R.BoxVal = P.addField(R.Box, "val", ValueType::Int);
  R.CacheKey = P.addStatic("cacheKey", ValueType::Ref);
  R.CacheValue = P.addStatic("cacheValue", ValueType::Ref);

  R.Equals = P.addMethod("Key.equals", R.Key,
                         {ValueType::Ref, ValueType::Ref}, ValueType::Int);
  R.CreateValue =
      P.addMethod("createValue", NoClass, {ValueType::Int}, ValueType::Ref);
  R.GetValue = P.addMethod("getValue", NoClass,
                           {ValueType::Int, ValueType::Ref}, ValueType::Ref);

  {
    // equals: synchronized comparison of both fields.
    CodeBuilder C(P, R.Equals);
    unsigned Result = C.newLocal();
    Label NotEqual = C.newLabel();
    Label Done = C.newLabel();
    C.load(0).monEnter();
    C.load(0).getField(R.Key, R.KeyIdx);
    C.load(1).getField(R.Key, R.KeyIdx);
    C.ifNe(NotEqual);
    C.load(0).getField(R.Key, R.KeyRef);
    C.load(1).getField(R.Key, R.KeyRef);
    C.ifRefNe(NotEqual);
    C.constI(1).store(Result).gotoL(Done);
    C.bind(NotEqual);
    C.constI(0).store(Result);
    C.bind(Done);
    C.load(0).monExit();
    C.load(Result).retInt();
    C.finish();
  }
  {
    // createValue: allocate a Box holding idx (always escapes via return).
    CodeBuilder C(P, R.CreateValue);
    unsigned B = C.newLocal();
    C.newObj(R.Box).store(B);
    C.load(B).load(0).putField(R.Box, R.BoxVal);
    C.load(B).retRef();
    C.finish();
  }
  {
    CodeBuilder C(P, R.GetValue);
    unsigned KeyL = C.newLocal();
    unsigned TmpL = C.newLocal();
    unsigned ValL = C.newLocal();
    Label Miss = C.newLabel();
    C.newObj(R.Key).store(KeyL);
    C.load(KeyL).load(0).putField(R.Key, R.KeyIdx);
    C.load(KeyL).load(1).putField(R.Key, R.KeyRef);
    C.getStatic(R.CacheKey).store(TmpL);
    C.load(TmpL).ifNull(Miss);
    C.load(KeyL).load(TmpL).invokeVirtual(R.Equals);
    C.constI(0).ifEq(Miss);
    C.getStatic(R.CacheValue).retRef();
    C.bind(Miss);
    if (UpdateCacheOnMiss)
      C.load(KeyL).putStatic(R.CacheKey);
    C.load(0).invokeStatic(R.CreateValue).store(ValL);
    C.load(ValL).putStatic(R.CacheValue);
    C.load(ValL).retRef();
    C.finish();
  }
  verifyProgramOrDie(P);
  return R;
}

/// Arithmetic/looping helpers:
///   abs(x), max(x, y), sumTo(n) via loop, fact(n) via recursion.
struct MathProgram {
  Program P;
  MethodId Abs = NoMethod, Max = NoMethod, SumTo = NoMethod, Fact = NoMethod;
};

inline MathProgram makeMathProgram() {
  MathProgram R;
  Program &P = R.P;
  R.Abs = P.addMethod("abs", NoClass, {ValueType::Int}, ValueType::Int);
  R.Max = P.addMethod("max", NoClass, {ValueType::Int, ValueType::Int},
                      ValueType::Int);
  R.SumTo = P.addMethod("sumTo", NoClass, {ValueType::Int}, ValueType::Int);
  R.Fact = P.addMethod("fact", NoClass, {ValueType::Int}, ValueType::Int);
  {
    CodeBuilder C(P, R.Abs);
    Label Neg = C.newLabel();
    C.load(0).constI(0).ifLt(Neg);
    C.load(0).retInt();
    C.bind(Neg);
    C.constI(0).load(0).sub().retInt();
    C.finish();
  }
  {
    CodeBuilder C(P, R.Max);
    Label Second = C.newLabel();
    C.load(0).load(1).ifLt(Second);
    C.load(0).retInt();
    C.bind(Second);
    C.load(1).retInt();
    C.finish();
  }
  {
    // sum = 0; for (i = 1; i <= n; i++) sum += i; return sum;
    CodeBuilder C(P, R.SumTo);
    unsigned Sum = C.newLocal();
    unsigned I = C.newLocal();
    Label Head = C.newLabel();
    Label Exit = C.newLabel();
    C.constI(0).store(Sum);
    C.constI(1).store(I);
    C.bind(Head);
    C.load(I).load(0).ifGt(Exit);
    C.load(Sum).load(I).add().store(Sum);
    C.load(I).constI(1).add().store(I);
    C.gotoL(Head);
    C.bind(Exit);
    C.load(Sum).retInt();
    C.finish();
  }
  {
    // fact(n) = n <= 1 ? 1 : n * fact(n - 1)
    CodeBuilder C(P, R.Fact);
    Label Base = C.newLabel();
    C.load(0).constI(1).ifLe(Base);
    C.load(0).load(0).constI(1).sub().invokeStatic(R.Fact).mul().retInt();
    C.bind(Base);
    C.constI(1).retInt();
    C.finish();
  }
  verifyProgramOrDie(P);
  return R;
}

/// Virtual dispatch: Shape base with area(), Circle/Square overriding it.
struct ShapesProgram {
  Program P;
  ClassId Shape = NoClass, Circle = NoClass, Square = NoClass;
  FieldIndex CircleR = -1, SquareS = -1;
  MethodId ShapeArea = NoMethod, CircleArea = NoMethod, SquareArea = NoMethod;
  MethodId MakeCircle = NoMethod, MakeSquare = NoMethod, AreaOf = NoMethod;
};

inline ShapesProgram makeShapesProgram() {
  ShapesProgram R;
  Program &P = R.P;
  R.Shape = P.addClass("Shape");
  R.Circle = P.addClass("Circle", R.Shape);
  R.CircleR = P.addField(R.Circle, "r", ValueType::Int);
  R.Square = P.addClass("Square", R.Shape);
  R.SquareS = P.addField(R.Square, "s", ValueType::Int);

  R.ShapeArea =
      P.addMethod("area", R.Shape, {ValueType::Ref}, ValueType::Int);
  R.CircleArea =
      P.addMethod("area", R.Circle, {ValueType::Ref}, ValueType::Int);
  R.SquareArea =
      P.addMethod("area", R.Square, {ValueType::Ref}, ValueType::Int);
  R.MakeCircle =
      P.addMethod("makeCircle", NoClass, {ValueType::Int}, ValueType::Ref);
  R.MakeSquare =
      P.addMethod("makeSquare", NoClass, {ValueType::Int}, ValueType::Ref);
  R.AreaOf = P.addMethod("areaOf", NoClass, {ValueType::Ref}, ValueType::Int);

  {
    CodeBuilder C(P, R.ShapeArea);
    C.constI(0).retInt();
    C.finish();
  }
  {
    // Circle area: 3 * r * r.
    CodeBuilder C(P, R.CircleArea);
    C.constI(3).load(0).getField(R.Circle, R.CircleR).mul();
    C.load(0).getField(R.Circle, R.CircleR).mul().retInt();
    C.finish();
  }
  {
    CodeBuilder C(P, R.SquareArea);
    C.load(0).getField(R.Square, R.SquareS);
    C.load(0).getField(R.Square, R.SquareS).mul().retInt();
    C.finish();
  }
  {
    CodeBuilder C(P, R.MakeCircle);
    unsigned O = C.newLocal();
    C.newObj(R.Circle).store(O);
    C.load(O).load(0).putField(R.Circle, R.CircleR);
    C.load(O).retRef();
    C.finish();
  }
  {
    CodeBuilder C(P, R.MakeSquare);
    unsigned O = C.newLocal();
    C.newObj(R.Square).store(O);
    C.load(O).load(0).putField(R.Square, R.SquareS);
    C.load(O).retRef();
    C.finish();
  }
  {
    CodeBuilder C(P, R.AreaOf);
    C.load(0).invokeVirtual(R.ShapeArea).retInt();
    C.finish();
  }
  verifyProgramOrDie(P);
  return R;
}

/// Allocation churn in a loop: sumBoxes(n) allocates a Box per iteration,
/// reads it back and discards it — the classic scalar-replacement target.
struct ChurnProgram {
  Program P;
  ClassId Box = NoClass;
  FieldIndex BoxVal = -1;
  MethodId SumBoxes = NoMethod;
};

inline ChurnProgram makeChurnProgram() {
  ChurnProgram R;
  Program &P = R.P;
  R.Box = P.addClass("Box");
  R.BoxVal = P.addField(R.Box, "val", ValueType::Int);
  R.SumBoxes =
      P.addMethod("sumBoxes", NoClass, {ValueType::Int}, ValueType::Int);
  CodeBuilder C(P, R.SumBoxes);
  unsigned Sum = C.newLocal();
  unsigned I = C.newLocal();
  unsigned B = C.newLocal();
  Label Head = C.newLabel();
  Label Exit = C.newLabel();
  C.constI(0).store(Sum);
  C.constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.newObj(R.Box).store(B);
  C.load(B).load(I).putField(R.Box, R.BoxVal);
  C.load(Sum).load(B).getField(R.Box, R.BoxVal).add().store(Sum);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Sum).retInt();
  C.finish();
  verifyProgramOrDie(P);
  return R;
}

} // namespace testprogs
} // namespace jvm

#endif // JVM_TESTS_TESTPROGRAMS_H
