//===- bytecode_test.cpp - Tests for the bytecode model ---------------------===//

#include "TestPrograms.h"
#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"
#include "bytecode/Disassembler.h"

#include <gtest/gtest.h>

using namespace jvm;

namespace {

TEST(ProgramTest, ClassFieldAndStaticRegistration) {
  Program P;
  ClassId A = P.addClass("A");
  FieldIndex F0 = P.addField(A, "x", ValueType::Int);
  FieldIndex F1 = P.addField(A, "y", ValueType::Ref);
  StaticIndex S = P.addStatic("g", ValueType::Ref);
  EXPECT_EQ(P.numClasses(), 1u);
  EXPECT_EQ(F0, 0);
  EXPECT_EQ(F1, 1);
  EXPECT_EQ(P.classAt(A).findField("y"), 1);
  EXPECT_EQ(P.classAt(A).findField("z"), -1);
  EXPECT_EQ(P.staticAt(S).Name, "g");
  EXPECT_EQ(P.findClass("A"), A);
  EXPECT_EQ(P.findClass("B"), NoClass);
}

TEST(ProgramTest, SubclassRelation) {
  Program P;
  ClassId A = P.addClass("A");
  ClassId B = P.addClass("B", A);
  ClassId C = P.addClass("C", B);
  ClassId D = P.addClass("D");
  EXPECT_TRUE(P.isSubclassOf(C, A));
  EXPECT_TRUE(P.isSubclassOf(B, B));
  EXPECT_FALSE(P.isSubclassOf(A, B));
  EXPECT_FALSE(P.isSubclassOf(D, A));
}

TEST(ProgramTest, VirtualResolutionWalksSuperChain) {
  auto S = testprogs::makeShapesProgram();
  EXPECT_EQ(S.P.resolveVirtual(S.ShapeArea, S.Circle), S.CircleArea);
  EXPECT_EQ(S.P.resolveVirtual(S.ShapeArea, S.Square), S.SquareArea);
  EXPECT_EQ(S.P.resolveVirtual(S.ShapeArea, S.Shape), S.ShapeArea);
}

TEST(CodeBuilderTest, ForwardLabelsArePatched) {
  Program P;
  MethodId M = P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Int);
  CodeBuilder C(P, M);
  Label L = C.newLabel();
  C.load(0).constI(0).ifLt(L);
  C.constI(1).retInt();
  C.bind(L);
  C.constI(-1).retInt();
  C.finish();
  const MethodInfo &MI = P.methodAt(M);
  ASSERT_EQ(MI.Code.size(), 7u);
  EXPECT_EQ(MI.Code[2].Op, Opcode::IfLt);
  EXPECT_EQ(MI.Code[2].A, 5);
}

TEST(CodeBuilderTest, NewLocalExtendsFrame) {
  Program P;
  MethodId M = P.addMethod("f", NoClass, {ValueType::Int}, ValueType::Void);
  CodeBuilder C(P, M);
  EXPECT_EQ(C.newLocal(), 1u);
  EXPECT_EQ(C.newLocal(), 2u);
  EXPECT_EQ(P.methodAt(M).NumLocals, 3u);
}

TEST(VerifierTest, AcceptsAllTestPrograms) {
  EXPECT_TRUE(verifyProgram(testprogs::makeCacheProgram(true).P).empty());
  EXPECT_TRUE(verifyProgram(testprogs::makeCacheProgram(false).P).empty());
  EXPECT_TRUE(verifyProgram(testprogs::makeMathProgram().P).empty());
  EXPECT_TRUE(verifyProgram(testprogs::makeShapesProgram().P).empty());
  EXPECT_TRUE(verifyProgram(testprogs::makeChurnProgram().P).empty());
}

TEST(VerifierTest, RejectsStackUnderflow) {
  Program P;
  MethodId M = P.addMethod("bad", NoClass, {}, ValueType::Int);
  CodeBuilder C(P, M);
  C.add().retInt(); // Nothing on the stack.
  C.finish();
  EXPECT_FALSE(verifyMethod(P, M).empty());
}

TEST(VerifierTest, RejectsTypeMismatch) {
  Program P;
  MethodId M = P.addMethod("bad", NoClass, {ValueType::Ref}, ValueType::Int);
  CodeBuilder C(P, M);
  C.load(0).retInt(); // Returning a ref as int.
  C.finish();
  EXPECT_FALSE(verifyMethod(P, M).empty());
}

TEST(VerifierTest, RejectsInconsistentMergeDepth) {
  Program P;
  MethodId M = P.addMethod("bad", NoClass, {ValueType::Int}, ValueType::Int);
  CodeBuilder C(P, M);
  Label L = C.newLabel();
  Label Join = C.newLabel();
  C.load(0).constI(0).ifLt(L);
  C.constI(1).constI(2).gotoL(Join); // Two values on one path...
  C.bind(L);
  C.constI(3).gotoL(Join); // ...one on the other.
  C.bind(Join);
  C.retInt();
  C.finish();
  EXPECT_FALSE(verifyMethod(P, M).empty());
}

TEST(VerifierTest, RejectsFallOffEnd) {
  Program P;
  MethodId M = P.addMethod("bad", NoClass, {}, ValueType::Void);
  CodeBuilder C(P, M);
  C.constI(1).pop();
  C.finish();
  EXPECT_FALSE(verifyMethod(P, M).empty());
}

TEST(VerifierTest, RejectsOutOfRangeBranch) {
  Program P;
  MethodId M = P.addMethod("bad", NoClass, {}, ValueType::Void);
  P.methodAt(M).Code = {{Opcode::Goto, 99, 0}};
  EXPECT_FALSE(verifyMethod(P, M).empty());
}

TEST(VerifierTest, RejectsUninitializedLocalLoad) {
  Program P;
  MethodId M = P.addMethod("bad", NoClass, {}, ValueType::Int);
  CodeBuilder C(P, M);
  unsigned L = C.newLocal();
  C.load(L).retInt();
  C.finish();
  EXPECT_FALSE(verifyMethod(P, M).empty());
}

TEST(VerifierTest, RejectsVirtualCallOfStaticMethod) {
  Program P;
  MethodId Callee = P.addMethod("s", NoClass, {ValueType::Ref}, ValueType::Void);
  {
    CodeBuilder C(P, Callee);
    C.retVoid();
    C.finish();
  }
  MethodId M = P.addMethod("bad", NoClass, {ValueType::Ref}, ValueType::Void);
  CodeBuilder C(P, M);
  C.load(0).invokeVirtual(Callee).retVoid();
  C.finish();
  EXPECT_FALSE(verifyMethod(P, M).empty());
}

TEST(DisassemblerTest, RendersNamesAndTargets) {
  auto CP = testprogs::makeCacheProgram(true);
  std::string Text = methodToString(CP.P, CP.GetValue);
  EXPECT_NE(Text.find("getValue"), std::string::npos);
  EXPECT_NE(Text.find("new Key"), std::string::npos);
  EXPECT_NE(Text.find("putfield Key.idx"), std::string::npos);
  EXPECT_NE(Text.find("getstatic cacheKey"), std::string::npos);
  EXPECT_NE(Text.find("invokevirtual Key.equals"), std::string::npos);

  std::string Full = programToString(CP.P);
  EXPECT_NE(Full.find("class Key"), std::string::npos);
  EXPECT_NE(Full.find("static ref cacheKey;"), std::string::npos);
}

TEST(OpcodePredicateTest, Classification) {
  EXPECT_TRUE(isConditionalBranch(Opcode::IfRefEq));
  EXPECT_FALSE(isConditionalBranch(Opcode::Goto));
  EXPECT_TRUE(isBlockEnd(Opcode::Goto));
  EXPECT_TRUE(isBlockEnd(Opcode::RetVoid));
  EXPECT_TRUE(isReturn(Opcode::RetRef));
  EXPECT_FALSE(isReturn(Opcode::Trap));
  EXPECT_FALSE(isBlockEnd(Opcode::Add));
}

} // namespace
