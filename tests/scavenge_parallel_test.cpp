//===- scavenge_parallel_test.cpp - Parallel-copy determinism -----------------===//
//
// The scavenger's copy phase fans out over a worker pool (claim-then-
// copy forwarding, per-worker copy buffers, gray-stack work stealing).
// Object *placement* may differ run to run, but the surviving object
// graph must not: the same mutator sequence must yield the same
// reachable values whatever JVM_GC_WORKERS says. This binary carries
// the "concurrency" label so the TSan build sweeps the racy surface
// (see README).
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace jvm;

namespace {

Program nodeProgram() {
  Program P;
  ClassId Node = P.addClass("Node");
  P.addField(Node, "val", ValueType::Int);
  P.addField(Node, "next", ValueType::Ref);
  P.addStatic("root", ValueType::Ref);
  return P;
}

/// Deterministic churn: a sliding window of live nodes chained through
/// the static root, with a fixed LCG deciding window truncation points,
/// plus a growing old-space population (every PromoteAge'th survivor
/// window promotes). Returns a checksum over the surviving chain and
/// the heap's exact copy/promote byte counters.
uint64_t churnChecksum(unsigned Workers, size_t Total) {
  Program P = nodeProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 8192;
  C.GcWorkers = Workers;
  C.FullGcThresholdBytes = 64 << 10; // full GCs join the party too
  Runtime RT(P, C);

  uint64_t Lcg = 0x2545F4914F6CDD1Dull;
  RT.setStatic(0, Value::makeRef(nullptr));
  for (size_t I = 0; I != Total; ++I) {
    HeapObject *N = RT.allocateInstance(0);
    N->setSlot(0, Value::makeInt(static_cast<int64_t>(I)));
    N->setSlot(1, RT.getStatic(0));
    RT.setStatic(0, Value::makeRef(N));
    Lcg = Lcg * 6364136223846793005ull + 1442695040888963407ull;
    unsigned Window = 8 + unsigned((Lcg >> 33) % 48);
    if (I % Window == Window - 1) {
      HeapObject *Cur = RT.getStatic(0).asRef();
      for (unsigned J = 0; J + 1 != Window && Cur; ++J)
        Cur = Cur->slot(1).asRef();
      if (Cur)
        RT.heap().write(Cur, 1, Value::makeRef(nullptr));
    }
  }
  EXPECT_GE(RT.heap().scavenges(), 2u);

  uint64_t Sum = 0;
  for (HeapObject *Cur = RT.getStatic(0).asRef(); Cur;
       Cur = Cur->slot(1).asRef())
    Sum = Sum * 31 + static_cast<uint64_t>(Cur->slot(0).asInt());
  // Copy/promote *volumes* are part of the contract: the same objects
  // must survive and promote, whoever copied them.
  Sum = Sum * 31 + RT.heap().bytesCopied();
  Sum = Sum * 31 + RT.heap().bytesPromoted();
  Sum = Sum * 31 + RT.heap().liveObjects();
  return Sum;
}

TEST(ParallelScavengeTest, ChecksumIndependentOfWorkerCount) {
  const size_t Total = 4000;
  uint64_t One = churnChecksum(1, Total);
  EXPECT_EQ(One, churnChecksum(2, Total));
  EXPECT_EQ(One, churnChecksum(4, Total));
}

TEST(ParallelScavengeTest, WorkerCountIsForcedByConfig) {
  Program P = nodeProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 8192;
  C.GcWorkers = 3;
  Runtime RT(P, C);
  RT.setStatic(0, Value::makeRef(nullptr));
  for (int I = 0; I != 400; ++I) {
    HeapObject *N = RT.allocateInstance(0);
    N->setSlot(1, RT.getStatic(0));
    RT.setStatic(0, Value::makeRef(N));
  }
  ASSERT_GE(RT.heap().scavenges(), 1u);
  EXPECT_EQ(RT.heap().lastGcWorkers(), 3u);
  // Per-worker copy accounting covers every configured worker slot.
  EXPECT_EQ(RT.heap().workerCopiedBytes().size(), 3u);
}

TEST(ParallelScavengeTest, StressModeStaysSingleWorker) {
  // JVM_GC_STRESS scavenges before every allocation; its determinism
  // contract predates parallelism, so the config override must win.
  Program P = nodeProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 8192;
  C.GcWorkers = 4;
  C.StressGc = true;
  Runtime RT(P, C);
  RT.setStatic(0, Value::makeRef(nullptr));
  for (int I = 0; I != 50; ++I) {
    HeapObject *N = RT.allocateInstance(0);
    N->setSlot(1, RT.getStatic(0));
    RT.setStatic(0, Value::makeRef(N));
  }
  ASSERT_GE(RT.heap().scavenges(), 1u);
  EXPECT_EQ(RT.heap().lastGcWorkers(), 1u);
}

} // namespace
