//===- linearcode_test.cpp - Linear tier vs graph walker equivalence -----------===//
//
// The register-based linear tier must be observationally identical to
// the graph walker it replaces: same results, same heap activity, same
// deoptimization requests — on hand-built graphs (executor level), on
// the shared test programs (deopt + materialization paths), and on
// every synthetic benchmark row (whole-VM level, ExecMode::Graph vs
// ExecMode::Linear).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "vm/CompileBroker.h"
#include "vm/VirtualMachine.h"
#include "workloads/Suites.h"

#include "CompileTestHelpers.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testjit;
using namespace jvm::testprogs;

namespace {

//===----------------------------------------------------------------------===//
// Translation structure
//===----------------------------------------------------------------------===//

TEST(LinearTranslationTest, ProducesCompactWellFormedCode) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  std::unique_ptr<Graph> G = J.buildOptimized(MP.SumTo, /*WithProfile=*/false);
  std::unique_ptr<LinearCode> L = translateGraph(*G);

  EXPECT_EQ(L->method(), MP.SumTo);
  EXPECT_EQ(L->numParams(), 1u);
  EXPECT_GT(L->numInsts(), 0u);
  EXPECT_GE(L->numRegs(), L->numParams());
  // sumTo is a pure loop: no calls, allocation, stores or monitors.
  EXPECT_FALSE(L->hasEffects());
  // Every control transfer lands inside the stream; every destination
  // register is within the frame.
  for (const LInst &I : L->Insts) {
    if (I.Op == LOp::Branch) {
      EXPECT_LT(I.B, L->numInsts());
      EXPECT_LT(I.C, L->numInsts());
    }
    if (I.Op == LOp::Jump) {
      EXPECT_LT(I.A, L->numInsts());
    }
    EXPECT_LT(I.Dst, L->numRegs());
  }
  // The constant pool holds each value once.
  for (unsigned A = 0; A != L->IntPool.size(); ++A)
    for (unsigned B = A + 1; B != L->IntPool.size(); ++B)
      EXPECT_NE(L->IntPool[A], L->IntPool[B]);
}

TEST(LinearTranslationTest, CallsMarkTheCodeEffectful) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  J.Opts.EnableInlining = false;
  // fact recurses through an Invoke; re-running it would double-count
  // the nested calls, so the differential tier must not replay it.
  std::unique_ptr<Graph> G = J.buildOptimized(MP.Fact, /*WithProfile=*/false);
  EXPECT_TRUE(translateGraph(*G)->hasEffects());
}

TEST(LinearTranslationTest, BrokerEmitsLinearCodeAlongsideTheGraph) {
  MathProgram MP = makeMathProgram();
  ProfileData Prof(MP.P.numMethods());
  CompilerOptions CO;
  CompileResult R = runCompilePipeline(
      MP.P, MP.Max, ProfileSnapshot(Prof, MP.P, MP.Max), CO);
  ASSERT_NE(R.G, nullptr);
  ASSERT_NE(R.Code, nullptr);
  EXPECT_GT(R.Code->numInsts(), 0u);
  EXPECT_EQ(R.Code->method(), MP.Max);
  EXPECT_GT(R.Phases.runsFor("schedule"), 0u);
  EXPECT_GT(R.Phases.runsFor("emit"), 0u);

  CO.EmitLinearCode = false;
  R = runCompilePipeline(MP.P, MP.Max, ProfileSnapshot(Prof, MP.P, MP.Max),
                         CO);
  ASSERT_NE(R.G, nullptr);
  EXPECT_EQ(R.Code, nullptr);
  EXPECT_EQ(R.Phases.runsFor("schedule"), 0u);
}

//===----------------------------------------------------------------------===//
// Hand-built graphs through both tiers
//===----------------------------------------------------------------------===//

/// Runs one hand-built graph through the walker AND the linear tier
/// (fresh runtime each, so heap counters compare 1:1) with the same
/// canned call/deopt handlers executor_test uses.
struct TierFixture {
  Program P;
  ClassId Cls = NoClass;
  FieldIndex F0 = -1, F1 = -1;

  std::vector<DeoptRequest> Deopts;
  Value DeoptResult = Value::makeInt(-7);

  TierFixture() {
    Cls = P.addClass("C");
    F0 = P.addField(Cls, "f0", ValueType::Int);
    F1 = P.addField(Cls, "f1", ValueType::Ref);
    P.addMethod("neg", NoClass, {ValueType::Int}, ValueType::Int);
  }

  CallHandler callHandler() {
    return [](MethodId, std::vector<Value> &&A) {
      return Value::makeInt(-A[0].asInt());
    };
  }
  DeoptHandlerFn deoptHandler() {
    return [this](DeoptRequest &&Req) {
      Deopts.push_back(std::move(Req));
      return DeoptResult;
    };
  }

  Value runGraph(Runtime &RT, const Graph &G, std::vector<Value> Args) {
    GraphExecutor Ex(RT, callHandler(), deoptHandler());
    Runtime::RootScope Roots(RT, &Args);
    return Ex.execute(G, Args);
  }

  Value runLinear(Runtime &RT, const Graph &G, std::vector<Value> Args) {
    std::unique_ptr<LinearCode> L = translateGraph(G);
    LinearExecutor Ex(RT, callHandler(), deoptHandler());
    Runtime::RootScope Roots(RT, &Args);
    return Ex.execute(*L, Args);
  }
};

TEST(LinearTierTest, PhiSwapProblemHandled) {
  // Loop that swaps two phis each iteration; the precomputed move lists
  // must keep simultaneous-assignment semantics.
  Graph G(0, {ValueType::Int});
  auto *FwdEnd = G.create<EndNode>();
  G.start()->setNext(FwdEnd);
  auto *Loop = G.create<LoopBeginNode>();
  Loop->addEnd(FwdEnd);
  auto *A = G.create<PhiNode>(Loop, ValueType::Int);
  auto *B = G.create<PhiNode>(Loop, ValueType::Int);
  auto *I = G.create<PhiNode>(Loop, ValueType::Int);
  A->appendValue(G.intConstant(1));
  B->appendValue(G.intConstant(2));
  I->appendValue(G.intConstant(0));
  auto *Cond = G.create<CompareNode>(CmpKind::IntLt, I, G.param(0));
  auto *If = G.create<IfNode>(Cond);
  Loop->setNext(If);
  auto *Body = G.create<BeginNode>();
  auto *ExitB = G.create<BeginNode>();
  If->setTrueSuccessor(Body);
  If->setFalseSuccessor(ExitB);
  auto *Back = G.create<LoopEndNode>(Loop);
  Body->setNext(Back);
  Loop->addBackEdge(Back);
  A->appendValue(B); // a' = b
  B->appendValue(A); // b' = a  (the swap)
  I->appendValue(G.create<ArithNode>(ArithKind::Add, I, G.intConstant(1)));
  auto *Exit = G.create<LoopExitNode>(Loop);
  ExitB->setNext(Exit);
  auto *Enc = G.create<ArithNode>(
      ArithKind::Add,
      G.create<ArithNode>(ArithKind::Mul, A, G.intConstant(10)), B);
  auto *Ret = G.create<ReturnNode>(Enc);
  Exit->setNext(Ret);
  verifyGraphOrDie(G);

  TierFixture F;
  Runtime RT(F.P);
  EXPECT_EQ(F.runLinear(RT, G, {Value::makeInt(3)}).asInt(), 21);
  EXPECT_EQ(F.runLinear(RT, G, {Value::makeInt(4)}).asInt(), 12);
}

TEST(LinearTierTest, MaterializeCyclicPairMatchesWalker) {
  // Commit of two objects referencing each other: a.f1 = b, b.f1 = a.
  TierFixture F;
  Graph G(0, {ValueType::Int});
  auto *Commit = G.create<MaterializeNode>(nullptr);
  auto *VA = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  auto *VB = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  Commit->addObject(VA, {G.param(0), VB}, 0);
  Commit->addObject(VB, {G.intConstant(9), VA}, /*LockDepth=*/1);
  auto *AO = G.create<AllocatedObjectNode>(Commit, 0);
  G.start()->setNext(Commit);
  auto *Ret = G.create<ReturnNode>(AO);
  Commit->setNext(Ret);
  verifyGraphOrDie(G);

  for (int Tier = 0; Tier != 2; ++Tier) {
    Runtime RT(F.P);
    Value R = Tier == 0 ? F.runGraph(RT, G, {Value::makeInt(5)})
                        : F.runLinear(RT, G, {Value::makeInt(5)});
    HeapObject *A = R.asRef();
    ASSERT_NE(A, nullptr) << "tier " << Tier;
    HeapObject *B = A->slot(F.F1).asRef();
    ASSERT_NE(B, nullptr) << "tier " << Tier;
    EXPECT_EQ(A->slot(F.F0), Value::makeInt(5)) << "tier " << Tier;
    EXPECT_EQ(B->slot(F.F0), Value::makeInt(9)) << "tier " << Tier;
    EXPECT_EQ(B->slot(F.F1).asRef(), A) << "tier " << Tier;
    EXPECT_EQ(B->lockCount(), 1) << "tier " << Tier;
    EXPECT_EQ(RT.heap().allocationCount(), 2u) << "tier " << Tier;
    EXPECT_EQ(RT.metrics().MonitorOps, 1u) << "tier " << Tier;
  }
}

TEST(LinearTierTest, DeoptRequestsAreBitForBitEquivalent) {
  // Two frames, two virtual objects (one referencing the other, one
  // with an elided lock): both tiers must produce structurally
  // identical DeoptRequests.
  TierFixture F;
  Graph G(0, {ValueType::Int});
  auto *Outer =
      G.create<FrameStateNode>(/*Method=*/0, /*Bci=*/4, false, 1, 1, 0);
  auto *VA = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  auto *VB = G.create<VirtualObjectNode>(F.Cls, false, ValueType::Void, 2);
  Outer->setLocalAt(0, G.param(0));
  Outer->setStackAt(0, G.intConstant(40));
  auto *Inner =
      G.create<FrameStateNode>(/*Method=*/1, /*Bci=*/2, true, 2, 0, 0);
  Inner->setLocalAt(0, VA);
  // Local 1 stays dead (null) — must reconstruct as Int(0).
  Inner->setOuter(Outer);
  Inner->addVirtualMapping(VA, {G.param(0), VB}, 0);
  Inner->addVirtualMapping(VB, {G.intConstant(2), G.nullConstant()}, 1);
  auto *Deopt = G.create<DeoptimizeNode>(DeoptReason::TypeGuardFailed, Inner);
  G.start()->setNext(Deopt);

  for (int Tier = 0; Tier != 2; ++Tier) {
    Runtime RT(F.P);
    F.Deopts.clear();
    Value R = Tier == 0 ? F.runGraph(RT, G, {Value::makeInt(3)})
                        : F.runLinear(RT, G, {Value::makeInt(3)});
    EXPECT_EQ(R, F.DeoptResult) << "tier " << Tier;
    ASSERT_EQ(F.Deopts.size(), 1u) << "tier " << Tier;
    const DeoptRequest &Req = F.Deopts[0];
    EXPECT_EQ(Req.Root, 0) << "tier " << Tier;
    EXPECT_EQ(Req.Reason, DeoptReason::TypeGuardFailed) << "tier " << Tier;
    ASSERT_EQ(Req.Frames.size(), 2u) << "tier " << Tier;

    const ResumeFrame &In = Req.Frames[0];
    EXPECT_EQ(In.Method, 1) << "tier " << Tier;
    EXPECT_EQ(In.Bci, 2) << "tier " << Tier;
    EXPECT_TRUE(In.Reexecute) << "tier " << Tier;
    ASSERT_EQ(In.Locals.size(), 2u) << "tier " << Tier;
    HeapObject *A = In.Locals[0].asRef();
    ASSERT_NE(A, nullptr) << "tier " << Tier;
    EXPECT_EQ(A->slot(F.F0), Value::makeInt(3)) << "tier " << Tier;
    HeapObject *B = A->slot(F.F1).asRef();
    ASSERT_NE(B, nullptr) << "tier " << Tier;
    EXPECT_EQ(B->slot(F.F0), Value::makeInt(2)) << "tier " << Tier;
    EXPECT_EQ(B->lockCount(), 1) << "tier " << Tier;
    EXPECT_EQ(In.Locals[1], Value::makeInt(0)) << "tier " << Tier;

    const ResumeFrame &Out = Req.Frames[1];
    EXPECT_EQ(Out.Method, 0) << "tier " << Tier;
    EXPECT_EQ(Out.Bci, 4) << "tier " << Tier;
    EXPECT_FALSE(Out.Reexecute) << "tier " << Tier;
    EXPECT_EQ(Out.Stack[0], Value::makeInt(40)) << "tier " << Tier;

    EXPECT_EQ(RT.heap().allocationCount(), 2u) << "tier " << Tier;
    EXPECT_EQ(RT.metrics().Deopts, 1u) << "tier " << Tier;
    EXPECT_EQ(RT.metrics().MonitorOps, 1u) << "tier " << Tier;
  }
}

//===----------------------------------------------------------------------===//
// Compiled test programs through both tiers
//===----------------------------------------------------------------------===//

TEST(LinearTierTest, ArithmeticAndLoopsMatchTheWalker) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  std::unique_ptr<Graph> Abs = J.buildOptimized(MP.Abs, false);
  std::unique_ptr<Graph> Sum = J.buildOptimized(MP.SumTo, false);
  std::unique_ptr<Graph> Fact = J.buildOptimized(MP.Fact, false);
  for (int64_t X : {-17L, 0L, 5L, 64L}) {
    EXPECT_EQ(J.execute(*Abs, {Value::makeInt(X)}).asInt(),
              J.executeLinear(*Abs, {Value::makeInt(X)}).asInt());
    EXPECT_EQ(J.execute(*Sum, {Value::makeInt(X)}).asInt(),
              J.executeLinear(*Sum, {Value::makeInt(X)}).asInt());
    if (X >= 0 && X < 10) {
      EXPECT_EQ(J.execute(*Fact, {Value::makeInt(X)}).asInt(),
                J.executeLinear(*Fact, {Value::makeInt(X)}).asInt());
    }
  }
}

TEST(LinearTierTest, MaterializationUnderPeaMatchesTheWalker) {
  // getValue under PEA: the Key is virtual until it escapes into the
  // cache (Listing 4's materialize-on-store path).
  CacheProgram CP = makeCacheProgram(/*UpdateCacheOnMiss=*/true);
  std::vector<Value> Args{Value::makeInt(7), Value::makeRef(nullptr)};

  uint64_t Allocs[2], Monitors[2];
  int64_t Results[2];
  for (int Tier = 0; Tier != 2; ++Tier) {
    TestJit J(CP.P);
    J.warmup(CP.GetValue, Args, 8);
    std::unique_ptr<Graph> G =
        J.buildWithEA(CP.GetValue, EscapeAnalysisMode::Partial);
    J.RT.resetMetrics();
    uint64_t Before = J.RT.heap().allocationCount();
    Value V = Tier == 0 ? J.execute(*G, Args) : J.executeLinear(*G, Args);
    Results[Tier] = V.asRef() ? V.asRef()->slot(CP.BoxVal).asInt() : -1;
    Allocs[Tier] = J.RT.heap().allocationCount() - Before;
    Monitors[Tier] = J.RT.metrics().MonitorOps;
  }
  EXPECT_EQ(Results[0], Results[1]);
  EXPECT_EQ(Allocs[0], Allocs[1]);
  EXPECT_EQ(Monitors[0], Monitors[1]);
}

//===----------------------------------------------------------------------===//
// Whole-VM agreement (ExecMode::Graph vs ExecMode::Linear)
//===----------------------------------------------------------------------===//

struct VmRun {
  int64_t Checksum = 0;
  uint64_t Allocs = 0;
  uint64_t Bytes = 0;
  uint64_t Deopts = 0;
  uint64_t MonitorOps = 0;
};

VmRun runCacheWorkload(ExecMode Mode) {
  CacheProgram CP = makeCacheProgram(/*UpdateCacheOnMiss=*/true);
  VMOptions VO;
  VO.CompileThreshold = 4;
  VO.CompilerThreads = 0; // Deterministic install points.
  VO.Compiler.EAMode = EscapeAnalysisMode::Partial;
  VO.Exec = Mode;
  VirtualMachine VM(CP.P, VO);
  VmRun R;
  for (int I = 0; I != 60; ++I) {
    Value V = VM.call(CP.GetValue,
                      {Value::makeInt(I % 5), Value::makeRef(nullptr)});
    R.Checksum += V.asRef() ? V.asRef()->slot(CP.BoxVal).asInt() : -1;
  }
  R.Allocs = VM.runtime().heap().allocationCount();
  R.Bytes = VM.runtime().heap().allocatedBytes();
  R.Deopts = VM.runtime().metrics().Deopts;
  R.MonitorOps = VM.runtime().metrics().MonitorOps;
  return R;
}

TEST(ExecModeTest, CacheWorkloadIdenticalAcrossTiers) {
  VmRun Graph = runCacheWorkload(ExecMode::Graph);
  VmRun Linear = runCacheWorkload(ExecMode::Linear);
  EXPECT_EQ(Graph.Checksum, Linear.Checksum);
  EXPECT_EQ(Graph.Allocs, Linear.Allocs);
  EXPECT_EQ(Graph.Bytes, Linear.Bytes);
  EXPECT_EQ(Graph.Deopts, Linear.Deopts);
  EXPECT_EQ(Graph.MonitorOps, Linear.MonitorOps);
}

TEST(ExecModeTest, DeoptingWorkloadIdenticalAcrossTiers) {
  // Devirtualized virtual dispatch that the input distribution later
  // betrays: both tiers must deopt identically and heal the same way.
  VmRun Runs[2];
  int Idx = 0;
  for (ExecMode Mode : {ExecMode::Graph, ExecMode::Linear}) {
    ShapesProgram SP = makeShapesProgram();
    VMOptions VO;
    VO.CompileThreshold = 6;
    VO.CompilerThreads = 0;
    VO.Compiler.DevirtMinProfile = 4;
    VO.Compiler.EAMode = EscapeAnalysisMode::Partial;
    VO.Exec = Mode;
    VirtualMachine VM(SP.P, VO);
    VmRun &R = Runs[Idx++];
    // Circles-only warmup, then squares break the speculation.
    for (int I = 0; I != 20; ++I) {
      Value Shape = VM.call(SP.MakeCircle, {Value::makeInt(I % 7)});
      R.Checksum += VM.call(SP.AreaOf, {Shape}).asInt();
    }
    for (int I = 0; I != 20; ++I) {
      Value Shape = I % 2 ? VM.call(SP.MakeSquare, {Value::makeInt(I)})
                          : VM.call(SP.MakeCircle, {Value::makeInt(I)});
      R.Checksum += VM.call(SP.AreaOf, {Shape}).asInt();
    }
    R.Allocs = VM.runtime().heap().allocationCount();
    R.Deopts = VM.runtime().metrics().Deopts;
  }
  EXPECT_EQ(Runs[0].Checksum, Runs[1].Checksum);
  EXPECT_EQ(Runs[0].Allocs, Runs[1].Allocs);
  EXPECT_EQ(Runs[0].Deopts, Runs[1].Deopts);
}

TEST(ExecModeTest, DifferentialModeAcceptsAgreeingTiers) {
  MathProgram MP = makeMathProgram();
  VMOptions VO;
  VO.CompileThreshold = 4;
  VO.CompilerThreads = 0;
  VO.Exec = ExecMode::Differential;
  VirtualMachine VM(MP.P, VO);
  int64_t Sum = 0;
  for (int I = 0; I != 40; ++I)
    Sum += VM.call(MP.SumTo, {Value::makeInt(I)}).asInt();
  // Sum of the first 40 triangular numbers.
  EXPECT_EQ(Sum, 10660);
  EXPECT_NE(VM.compiledGraph(MP.SumTo), nullptr);
  EXPECT_NE(VM.compiledLinear(MP.SumTo), nullptr);
}

TEST(ExecModeTest, GraphModeStillInstallsLinearCode) {
  MathProgram MP = makeMathProgram();
  VMOptions VO;
  VO.CompileThreshold = 4;
  VO.CompilerThreads = 0;
  VO.Exec = ExecMode::Graph;
  VirtualMachine VM(MP.P, VO);
  for (int I = 0; I != 20; ++I)
    VM.call(MP.SumTo, {Value::makeInt(I)});
  // Same pipeline, same installation — just not executed.
  EXPECT_NE(VM.compiledGraph(MP.SumTo), nullptr);
  EXPECT_NE(VM.compiledLinear(MP.SumTo), nullptr);
}

/// Every synthetic benchmark row, whole-VM, graph vs linear tier: same
/// checksum, same heap activity, same deopt and monitor counts.
const workloads::BenchmarkSet &sharedSet() {
  static const workloads::BenchmarkSet Set = workloads::buildBenchmarkSet();
  return Set;
}

class RowTierEquivalenceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RowTierEquivalenceTest, GraphAndLinearTiersAgree) {
  const workloads::BenchmarkSet &Set = sharedSet();
  const workloads::BenchmarkRow &Row = Set.Rows[GetParam()];
  const int64_t Scale = 1500;

  VmRun Runs[2];
  int Idx = 0;
  for (ExecMode Mode : {ExecMode::Graph, ExecMode::Linear}) {
    VMOptions VO;
    VO.CompileThreshold = 100;
    VO.CompilerThreads = 0;
    VO.Compiler.EAMode = EscapeAnalysisMode::Partial;
    VO.Exec = Mode;
    VirtualMachine VM(Set.WP.P, VO);
    VM.call(Set.WP.Setup, {});
    std::vector<Value> Args{Value::makeInt(Scale)};
    for (int I = 0; I != 4; ++I)
      VM.call(Row.Driver, Args);
    VM.runtime().resetMetrics();
    uint64_t Allocs0 = VM.runtime().heap().allocationCount();
    uint64_t Bytes0 = VM.runtime().heap().allocatedBytes();
    VmRun &R = Runs[Idx++];
    for (int I = 0; I != 3; ++I)
      R.Checksum += VM.call(Row.Driver, Args).asInt();
    R.Allocs = VM.runtime().heap().allocationCount() - Allocs0;
    R.Bytes = VM.runtime().heap().allocatedBytes() - Bytes0;
    R.Deopts = VM.runtime().metrics().Deopts;
    R.MonitorOps = VM.runtime().metrics().MonitorOps;
  }
  EXPECT_EQ(Runs[0].Checksum, Runs[1].Checksum) << Row.Name;
  EXPECT_EQ(Runs[0].Allocs, Runs[1].Allocs) << Row.Name;
  EXPECT_EQ(Runs[0].Bytes, Runs[1].Bytes) << Row.Name;
  EXPECT_EQ(Runs[0].Deopts, Runs[1].Deopts) << Row.Name;
  EXPECT_EQ(Runs[0].MonitorOps, Runs[1].MonitorOps) << Row.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, RowTierEquivalenceTest, ::testing::Range(0u, 27u),
    [](const ::testing::TestParamInfo<unsigned> &Info) {
      return sharedSet().Rows[Info.param].Name;
    });

} // namespace
