//===- CompileTestHelpers.h - Compile-and-run scaffolding for tests -*- C++ -*-===//
///
/// \file
/// A miniature JIT harness for tests: interpret to warm profiles, build
/// and optimize graphs with an explicit phase list, execute them with the
/// GraphExecutor, and deoptimize into the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef JVM_TESTS_COMPILETESTHELPERS_H
#define JVM_TESTS_COMPILETESTHELPERS_H

#include "compiler/Canonicalizer.h"
#include "compiler/DeadCodeElimination.h"
#include "compiler/GVN.h"
#include "compiler/GraphBuilder.h"
#include "compiler/Inliner.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pea/PartialEscapeAnalysis.h"
#include "vm/GraphExecutor.h"
#include "vm/LinearCode.h"

#include <memory>

namespace jvm {
namespace testjit {

/// Counts nodes of kind \p K in \p G.
inline unsigned countNodes(const Graph &G, NodeKind K) {
  unsigned N = 0;
  for (unsigned Id = 0, E = G.nodeIdBound(); Id != E; ++Id)
    if (const Node *Node = G.nodeAt(Id))
      N += Node->kind() == K;
  return N;
}

class TestJit {
public:
  explicit TestJit(const Program &P)
      : P(P), RT(P), Prof(P.numMethods()), Interp(RT, Prof) {}

  /// Interprets \p M once (collecting profiles).
  Value interpret(MethodId M, std::vector<Value> Args) {
    return Interp.call(M, std::move(Args));
  }

  /// Interprets \p M \p Times times with the same arguments.
  void warmup(MethodId M, const std::vector<Value> &Args, unsigned Times) {
    for (unsigned I = 0; I != Times; ++I)
      Interp.call(M, Args);
  }

  /// Front end only (with profiles unless \p WithProfile is false).
  std::unique_ptr<Graph> build(MethodId M, bool WithProfile = true) {
    std::unique_ptr<Graph> G =
        buildGraph(P, M, WithProfile ? &Prof.of(M) : nullptr, Opts);
    verifyGraphOrDie(*G);
    return G;
  }

  /// Front end + the standard pre-EA pipeline.
  std::unique_ptr<Graph> buildOptimized(MethodId M, bool WithProfile = true) {
    std::unique_ptr<Graph> G = build(M, WithProfile);
    canonicalize(*G, P);
    verifyGraphOrDie(*G);
    if (Opts.EnableInlining) {
      inlineCalls(*G, P, WithProfile ? &Prof : nullptr, Opts);
      verifyGraphOrDie(*G);
      canonicalize(*G, P);
    }
    runGVN(*G);
    eliminateDeadCode(*G);
    verifyGraphOrDie(*G);
    return G;
  }

  /// The full pipeline with the configured escape analysis.
  std::unique_ptr<Graph> buildWithEA(MethodId M, EscapeAnalysisMode Mode,
                                     PEAStats *Stats = nullptr,
                                     bool WithProfile = true) {
    std::unique_ptr<Graph> G = buildOptimized(M, WithProfile);
    if (Mode == EscapeAnalysisMode::Partial)
      runPartialEscapeAnalysis(*G, P, Opts, Stats);
    else if (Mode == EscapeAnalysisMode::FlowInsensitive)
      runFlowInsensitiveEscapeAnalysis(*G, P, Opts, Stats);
    verifyGraphOrDie(*G);
    for (int Round = 0; Round != 4; ++Round) {
      bool Changed = canonicalize(*G, P);
      Changed |= runGVN(*G);
      Changed |= eliminateDeadCode(*G);
      if (!Changed)
        break;
    }
    verifyGraphOrDie(*G);
    return G;
  }

  /// Runs \p G; calls dispatch to the interpreter, deopts resume in it.
  Value execute(const Graph &G, std::vector<Value> Args) {
    Runtime::RootScope ArgRoots(RT, &Args);
    GraphExecutor Ex(
        RT,
        [this](MethodId Target, std::vector<Value> &&CallArgs) {
          return Interp.call(Target, std::move(CallArgs));
        },
        [this](DeoptRequest &&Req) {
          return Interp.resume(std::move(Req.Frames));
        });
    return Ex.execute(G, Args);
  }

  /// Translates \p G to linear code and runs that instead; same call and
  /// deopt wiring as execute().
  Value executeLinear(const Graph &G, std::vector<Value> Args) {
    Runtime::RootScope ArgRoots(RT, &Args);
    std::unique_ptr<LinearCode> L = translateGraph(G);
    LinearExecutor Ex(
        RT,
        [this](MethodId Target, std::vector<Value> &&CallArgs) {
          return Interp.call(Target, std::move(CallArgs));
        },
        [this](DeoptRequest &&Req) {
          return Interp.resume(std::move(Req.Frames));
        });
    return Ex.execute(*L, Args);
  }

  const Program &P;
  Runtime RT;
  ProfileData Prof;
  Interpreter Interp;
  CompilerOptions Opts;
};

} // namespace testjit
} // namespace jvm

#endif // JVM_TESTS_COMPILETESTHELPERS_H
