//===- phase_manager_test.cpp - Phase plan / manager behavior ----------------===//
//
// Covers the declarative phase layer: plan ordering and changed
// propagation, per-phase timing, the bounded fixpoint combinator (both
// convergence and the round cap), verification attribution to the
// culprit phase, structured dumping, and — the load-bearing one — a
// differential test proving the default plan produces graphs identical
// node for node to the seed pipeline's hand-rolled call sequence.
//
//===----------------------------------------------------------------------===//

#include "CompileTestHelpers.h"
#include "TestPrograms.h"

#include "compiler/PhasePlan.h"
#include "compiler/StandardPhases.h"
#include "pea/EscapePhases.h"
#include "vm/CompileBroker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace jvm;
using namespace jvm::testjit;
using namespace jvm::testprogs;

namespace {

//===----------------------------------------------------------------------===//
// Synthetic phases
//===----------------------------------------------------------------------===//

/// Appends its name to an external log and reports a fixed changed bit.
class RecordingPhase : public Phase {
public:
  RecordingPhase(const char *Name, bool Changes, std::vector<std::string> *Log)
      : Name(Name), Changes(Changes), Log(Log) {}

  const char *name() const override { return Name; }
  bool run(Graph &, PhaseContext &) const override {
    Log->push_back(Name);
    return Changes;
  }

private:
  const char *Name;
  bool Changes;
  std::vector<std::string> *Log;
};

/// Reports "changed" for the first *Budget executions, then settles.
class CountdownPhase : public Phase {
public:
  explicit CountdownPhase(unsigned *Budget) : Budget(Budget) {}

  const char *name() const override { return "countdown"; }
  bool run(Graph &, PhaseContext &) const override {
    if (*Budget == 0)
      return false;
    --*Budget;
    return true;
  }

private:
  unsigned *Budget;
};

/// Leaves a structurally broken graph behind: an If with no successors.
class CorruptorPhase : public Phase {
public:
  const char *name() const override { return "corruptor"; }
  bool run(Graph &G, PhaseContext &) const override {
    G.start()->setNext(G.create<IfNode>(G.param(0)));
    return true;
  }
};

/// A program + empty profile snapshot + a fresh graph to run plans on.
struct PlanHarness {
  PlanHarness() : Prof(MP.P.numMethods()), Snap(Prof) {}

  PhaseContext makeCtx(MethodId M) {
    return PhaseContext(MP.P, Snap, Opts, M);
  }

  std::unique_ptr<Graph> emptyGraph(MethodId M) {
    return std::make_unique<Graph>(M, MP.P.methodAt(M).ParamTypes);
  }

  MathProgram MP = makeMathProgram();
  ProfileData Prof;
  ProfileSnapshot Snap;
  CompilerOptions Opts;
};

//===----------------------------------------------------------------------===//
// Plan mechanics
//===----------------------------------------------------------------------===//

TEST(PhasePlanTest, RunsPhasesInAppendOrderAndOrsChangedBits) {
  PlanHarness H;
  std::vector<std::string> Log;
  PhasePlan Plan;
  Plan.append<RecordingPhase>("first", false, &Log);
  Plan.append<RecordingPhase>("second", true, &Log);
  Plan.append<RecordingPhase>("third", false, &Log);

  PhaseContext Ctx = H.makeCtx(H.MP.SumTo);
  std::unique_ptr<Graph> G = H.emptyGraph(H.MP.SumTo);
  EXPECT_TRUE(Plan.run(*G, Ctx)); // "second" changed
  EXPECT_EQ(Log, (std::vector<std::string>{"first", "second", "third"}));

  Log.clear();
  PhasePlan Quiet;
  Quiet.append<RecordingPhase>("only", false, &Log);
  PhaseContext Ctx2 = H.makeCtx(H.MP.SumTo);
  std::unique_ptr<Graph> G2 = H.emptyGraph(H.MP.SumTo);
  EXPECT_FALSE(Quiet.run(*G2, Ctx2));
}

TEST(PhasePlanTest, TimesEveryExecutionByName) {
  PlanHarness H;
  std::vector<std::string> Log;
  PhasePlan Plan;
  Plan.append<RecordingPhase>("alpha", true, &Log);
  Plan.append<RecordingPhase>("beta", true, &Log);
  Plan.append<RecordingPhase>("alpha", true, &Log); // same name, same entry

  PhaseContext Ctx = H.makeCtx(H.MP.SumTo);
  std::unique_ptr<Graph> G = H.emptyGraph(H.MP.SumTo);
  Plan.run(*G, Ctx);

  ASSERT_EQ(Ctx.Times.Entries.size(), 2u);
  EXPECT_EQ(Ctx.Times.Entries[0].Name, "alpha"); // first-execution order
  EXPECT_EQ(Ctx.Times.Entries[1].Name, "beta");
  EXPECT_EQ(Ctx.Times.runsFor("alpha"), 2u);
  EXPECT_EQ(Ctx.Times.runsFor("beta"), 1u);
  EXPECT_EQ(Ctx.Times.runsFor("gamma"), 0u);
}

TEST(PhaseTimesTest, MergesByNameKeepingFirstSeenOrder) {
  PhaseTimes A;
  A.entryFor("build").Nanos = 10;
  A.entryFor("build").Runs = 1;
  A.entryFor("canon").Nanos = 5;
  A.entryFor("canon").Runs = 2;

  PhaseTimes B;
  B.entryFor("canon").Nanos = 7;
  B.entryFor("canon").Runs = 1;
  B.entryFor("escape-partial").Nanos = 3;
  B.entryFor("escape-partial").Runs = 1;

  A += B;
  ASSERT_EQ(A.Entries.size(), 3u);
  EXPECT_EQ(A.nanosFor("build"), 10u);
  EXPECT_EQ(A.nanosFor("canon"), 12u);
  EXPECT_EQ(A.runsFor("canon"), 3u);
  EXPECT_EQ(A.nanosFor("escape-partial"), 3u);
  EXPECT_EQ(A.totalNanos(), 25u);
}

//===----------------------------------------------------------------------===//
// Fixpoint combinator
//===----------------------------------------------------------------------===//

TEST(FixpointPhaseTest, StopsWhenARoundReportsNoChange) {
  PlanHarness H;
  unsigned Budget = 2; // changes twice, then settles
  PhasePlan Plan;
  FixpointPhase &Fix = Plan.append<FixpointPhase>("loop", 10);
  Fix.append<CountdownPhase>(&Budget);

  PhaseContext Ctx = H.makeCtx(H.MP.SumTo);
  std::unique_ptr<Graph> G = H.emptyGraph(H.MP.SumTo);
  EXPECT_TRUE(Plan.run(*G, Ctx));
  // Two changing rounds plus the round that observed convergence.
  EXPECT_EQ(Ctx.Times.runsFor("countdown"), 3u);
  EXPECT_EQ(Ctx.FixpointCapHits, 0u);
}

TEST(FixpointPhaseTest, RoundCapIsCountedAndWarnedAbout) {
  PlanHarness H;
  unsigned Budget = 1000; // never converges on its own
  PhasePlan Plan;
  FixpointPhase &Fix = Plan.append<FixpointPhase>("loop", 3);
  Fix.append<CountdownPhase>(&Budget);

  std::string Dump;
  PhaseContext Ctx = H.makeCtx(H.MP.SumTo);
  Ctx.DumpText = &Dump;
  std::unique_ptr<Graph> G = H.emptyGraph(H.MP.SumTo);
  EXPECT_TRUE(Plan.run(*G, Ctx));
  EXPECT_EQ(Ctx.Times.runsFor("countdown"), 3u); // exactly the cap
  EXPECT_EQ(Ctx.FixpointCapHits, 1u);
  EXPECT_NE(Dump.find("fixpoint 'loop' hit its round cap (3)"),
            std::string::npos);
}

TEST(FixpointPhaseTest, ChildrenAreTimedIndividuallyNotTheWrapper) {
  PlanHarness H;
  std::vector<std::string> Log;
  PhasePlan Plan;
  FixpointPhase &Fix = Plan.append<FixpointPhase>("loop", 5);
  Fix.append<RecordingPhase>("child", false, &Log);

  PhaseContext Ctx = H.makeCtx(H.MP.SumTo);
  std::unique_ptr<Graph> G = H.emptyGraph(H.MP.SumTo);
  Plan.run(*G, Ctx);
  EXPECT_EQ(Ctx.Times.runsFor("child"), 1u);
  // The composite wrapper must not charge itself a timing row on top of
  // its children.
  EXPECT_EQ(Ctx.Times.runsFor("loop"), 0u);
}

//===----------------------------------------------------------------------===//
// Verification attribution
//===----------------------------------------------------------------------===//

using PhaseManagerDeathTest = ::testing::Test;

TEST(PhaseManagerDeathTest, BrokenGraphIsAttributedToCulpritPhase) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  PlanHarness H;
  H.Opts.VerifyAfterEachPhase = true;
  PhaseContext Ctx = H.makeCtx(H.MP.Abs);
  std::unique_ptr<Graph> G = H.emptyGraph(H.MP.Abs);
  CorruptorPhase Corruptor;
  EXPECT_DEATH(runManagedPhase(Corruptor, *G, Ctx),
               "IR verification failed after phase 'corruptor'");
}

TEST(PhaseManagerTest, VerificationCanBeDisabled) {
  PlanHarness H;
  H.Opts.VerifyAfterEachPhase = false;
  PhaseContext Ctx = H.makeCtx(H.MP.Abs);
  std::unique_ptr<Graph> G = H.emptyGraph(H.MP.Abs);
  CorruptorPhase Corruptor;
  EXPECT_TRUE(runManagedPhase(Corruptor, *G, Ctx)); // no abort
}

//===----------------------------------------------------------------------===//
// Default plan composition
//===----------------------------------------------------------------------===//

std::vector<std::string> planNames(const PhasePlan &Plan) {
  std::vector<std::string> Names;
  for (size_t I = 0; I != Plan.size(); ++I)
    Names.push_back(Plan.phaseAt(I).name());
  return Names;
}

TEST(DefaultPlanTest, MirrorsTheSeedPipelineStageForStage) {
  CompilerOptions CO;
  CO.EAMode = EscapeAnalysisMode::Partial;
  EXPECT_EQ(planNames(makeDefaultPhasePlan(CO)),
            (std::vector<std::string>{"build", "canon", "inline", "canon",
                                      "gvn", "dce", "escape-partial",
                                      "cleanup", "verify", "schedule"}));

  CO.EAMode = EscapeAnalysisMode::FlowInsensitive;
  EXPECT_EQ(planNames(makeDefaultPhasePlan(CO)),
            (std::vector<std::string>{"build", "canon", "inline", "canon",
                                      "gvn", "dce", "escape-flowins",
                                      "cleanup", "verify", "schedule"}));

  CO.EAMode = EscapeAnalysisMode::None;
  CO.EnableInlining = false;
  EXPECT_EQ(planNames(makeDefaultPhasePlan(CO)),
            (std::vector<std::string>{"build", "canon", "gvn", "dce",
                                      "cleanup", "verify", "schedule"}));

  // The schedule phase only serves the linear-code backend; plans built
  // for a graph-walking configuration omit it.
  CO.EmitLinearCode = false;
  EXPECT_EQ(planNames(makeDefaultPhasePlan(CO)),
            (std::vector<std::string>{"build", "canon", "gvn", "dce",
                                      "cleanup", "verify"}));
}

TEST(DefaultPlanTest, CleanupFixpointHonorsConfiguredCap) {
  CompilerOptions CO;
  CO.CleanupFixpointMaxRounds = 7;
  PhasePlan Plan = makeDefaultPhasePlan(CO);
  const FixpointPhase *Cleanup = nullptr;
  for (size_t I = 0; I != Plan.size(); ++I)
    if (std::string(Plan.phaseAt(I).name()) == "cleanup")
      Cleanup = dynamic_cast<const FixpointPhase *>(&Plan.phaseAt(I));
  ASSERT_NE(Cleanup, nullptr);
  EXPECT_TRUE(Cleanup->isComposite());
  EXPECT_EQ(Cleanup->maxRounds(), 7u);
  EXPECT_EQ(Cleanup->numChildren(), 3u); // canon, gvn, dce
}

//===----------------------------------------------------------------------===//
// Structured dumping
//===----------------------------------------------------------------------===//

TEST(PhaseDumpTest, BuffersTextPerCompileInsteadOfWritingStderr) {
  PlanHarness H;
  std::string Dump;
  PhaseContext Ctx = H.makeCtx(H.MP.SumTo);
  Ctx.DumpText = &Dump;
  std::unique_ptr<Graph> G = H.emptyGraph(H.MP.SumTo);
  makeDefaultPhasePlan(H.Opts).run(*G, Ctx);

  EXPECT_NE(Dump.find("== after build =="), std::string::npos);
  // Only graph-changing executions dump; the build dump must contain IR.
  EXPECT_NE(Dump.find("graph method=" + std::to_string(H.MP.SumTo)),
            std::string::npos);
}

TEST(PhaseDumpTest, WritesOneSnapshotFilePerChangingPhase) {
  PlanHarness H;
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "peajit-phase-dumps";
  std::filesystem::remove_all(Dir);

  PhaseContext Ctx = H.makeCtx(H.MP.Fact);
  Ctx.DumpDir = Dir.string();
  Ctx.CompileSeq = 42;
  std::unique_ptr<Graph> G = H.emptyGraph(H.MP.Fact);
  makeDefaultPhasePlan(H.Opts).run(*G, Ctx);

  std::vector<std::string> Files;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    Files.push_back(E.path().filename().string());
  ASSERT_FALSE(Files.empty());
  std::string Prefix = "m" + std::to_string(H.MP.Fact) + "-c42-";
  bool SawBuild = false;
  for (const std::string &F : Files) {
    EXPECT_EQ(F.rfind(Prefix, 0), 0u) << F;
    SawBuild |= F.find("-build.ir") != std::string::npos;
  }
  EXPECT_TRUE(SawBuild);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Differential identity with the seed pipeline
//===----------------------------------------------------------------------===//

/// The seed's hand-rolled runCompilePipeline call sequence, verbatim:
/// build+canon, [inline+canon,] gvn+dce, the selected escape analysis,
/// four capped cleanup rounds, final verify. The plan pipeline must
/// reproduce its output graph for graph.
std::unique_ptr<Graph> legacySeedPipeline(const Program &P, MethodId M,
                                          const ProfileSnapshot &Profiles,
                                          const CompilerOptions &CO) {
  std::unique_ptr<Graph> G = buildGraph(P, M, &Profiles.of(M), CO);
  canonicalize(*G, P);
  if (CO.EnableInlining) {
    inlineCalls(*G, P, &Profiles.data(), CO);
    canonicalize(*G, P);
  }
  runGVN(*G);
  eliminateDeadCode(*G);
  switch (CO.EAMode) {
  case EscapeAnalysisMode::None:
    break;
  case EscapeAnalysisMode::FlowInsensitive:
    runFlowInsensitiveEscapeAnalysis(*G, P, CO, nullptr);
    break;
  case EscapeAnalysisMode::Partial:
    runPartialEscapeAnalysis(*G, P, CO, nullptr);
    break;
  }
  for (int Round = 0; Round != 4; ++Round) {
    bool Changed = canonicalize(*G, P);
    Changed |= runGVN(*G);
    Changed |= eliminateDeadCode(*G);
    if (!Changed)
      break;
  }
  verifyGraphOrDie(*G);
  return G;
}

void expectPlanMatchesLegacy(const Program &P, MethodId M,
                             const ProfileSnapshot &Snap, const char *What) {
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::FlowInsensitive,
        EscapeAnalysisMode::Partial}) {
    CompilerOptions CO;
    CO.EAMode = Mode;
    std::unique_ptr<Graph> Legacy = legacySeedPipeline(P, M, Snap, CO);
    CompileResult R = runCompilePipeline(P, M, Snap, CO);
    ASSERT_NE(R.G, nullptr);
    EXPECT_EQ(graphToString(*R.G), graphToString(*Legacy))
        << What << " diverged under " << escapeAnalysisModeName(Mode);
  }
}

TEST(PlanDifferentialTest, MathProgramWithWarmProfiles) {
  MathProgram MP = makeMathProgram();
  TestJit J(MP.P);
  J.warmup(MP.SumTo, {Value::makeInt(10)}, 30);
  J.warmup(MP.Fact, {Value::makeInt(6)}, 30);
  J.warmup(MP.Abs, {Value::makeInt(-5)}, 30);
  J.warmup(MP.Max, {Value::makeInt(2), Value::makeInt(3)}, 30);
  ProfileSnapshot Snap(J.Prof);
  expectPlanMatchesLegacy(MP.P, MP.SumTo, Snap, "sumTo");
  expectPlanMatchesLegacy(MP.P, MP.Fact, Snap, "fact");
  expectPlanMatchesLegacy(MP.P, MP.Abs, Snap, "abs");
  expectPlanMatchesLegacy(MP.P, MP.Max, Snap, "max");
}

TEST(PlanDifferentialTest, CacheProgramAllocationSinking) {
  CacheProgram CP = makeCacheProgram(true);
  TestJit J(CP.P);
  for (int I = 0; I != 30; ++I)
    J.interpret(CP.GetValue, {Value::makeInt(7), Value::makeRef(nullptr)});
  ProfileSnapshot Snap(J.Prof);
  expectPlanMatchesLegacy(CP.P, CP.GetValue, Snap, "getValue");
}

TEST(PlanDifferentialTest, ChurnProgramUnprofiled) {
  ChurnProgram CP = makeChurnProgram();
  ProfileData Prof(CP.P.numMethods());
  ProfileSnapshot Snap(Prof);
  expectPlanMatchesLegacy(CP.P, CP.SumBoxes, Snap, "sumBoxes");
}

TEST(PlanDifferentialTest, ShapesProgramWithDevirtualization) {
  ShapesProgram SP = makeShapesProgram();
  TestJit J(SP.P);
  Value Circle = J.interpret(SP.MakeCircle, {Value::makeInt(2)});
  J.warmup(SP.AreaOf, {Circle}, 30);
  ProfileSnapshot Snap(J.Prof);
  expectPlanMatchesLegacy(SP.P, SP.AreaOf, Snap, "areaOf");
}

//===----------------------------------------------------------------------===//
// Pipeline driver results
//===----------------------------------------------------------------------===//

TEST(PipelineResultTest, CarriesPerPhaseTimesAndTotals) {
  MathProgram MP = makeMathProgram();
  ProfileData Prof(MP.P.numMethods());
  ProfileSnapshot Snap(Prof);
  CompilerOptions CO;
  CompileResult R = runCompilePipeline(MP.P, MP.SumTo, Snap, CO);
  ASSERT_NE(R.G, nullptr);
  EXPECT_EQ(R.Phases.runsFor("build"), 1u);
  EXPECT_GE(R.Phases.runsFor("canon"), 2u);
  EXPECT_GT(R.Phases.nanosFor("build"), 0u);
  EXPECT_LE(R.Phases.totalNanos(), R.TotalNanos);
  EXPECT_EQ(R.FixpointCapHits, 0u);
}

} // namespace
