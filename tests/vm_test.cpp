//===- vm_test.cpp - Tests for the tiered VirtualMachine ----------------------===//

#include "TestPrograms.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testprogs;

namespace {

VMOptions fastJit(EscapeAnalysisMode Mode = EscapeAnalysisMode::Partial) {
  VMOptions O;
  O.CompileThreshold = 5;
  O.Compiler.EAMode = Mode;
  O.Compiler.PruneMinProfile = 5;
  O.Compiler.DevirtMinProfile = 5;
  // These tests assert exact allocation/monitor counts at specific call
  // indices, so compilation must complete at the threshold crossing.
  // broker_test covers the background (CompilerThreads > 0) path.
  O.CompilerThreads = 0;
  return O;
}

TEST(VmTest, TiersUpAfterThreshold) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, fastJit());
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(VM.call(MP.SumTo, {Value::makeInt(10)}).asInt(), 55);
  EXPECT_NE(VM.compiledGraph(MP.SumTo), nullptr);
  EXPECT_GE(VM.jitMetrics().Compilations, 1u);
  EXPECT_GT(VM.runtime().metrics().CompiledCalls, 0u);
  // Still correct after tier-up.
  EXPECT_EQ(VM.call(MP.SumTo, {Value::makeInt(100)}).asInt(), 5050);
}

TEST(VmTest, JitDisabledStaysInterpreted) {
  MathProgram MP = makeMathProgram();
  VMOptions O = fastJit();
  O.EnableJit = false;
  VirtualMachine VM(MP.P, O);
  for (int I = 0; I != 20; ++I)
    VM.call(MP.SumTo, {Value::makeInt(5)});
  EXPECT_EQ(VM.compiledGraph(MP.SumTo), nullptr);
  EXPECT_EQ(VM.runtime().metrics().CompiledCalls, 0u);
}

TEST(VmTest, RecursiveCallsTierUpThroughVm) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, fastJit());
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(VM.call(MP.Fact, {Value::makeInt(10)}).asInt(), 3628800);
  EXPECT_NE(VM.compiledGraph(MP.Fact), nullptr);
  EXPECT_EQ(VM.call(MP.Fact, {Value::makeInt(12)}).asInt(), 479001600);
}

TEST(VmTest, DeoptResumesAndEventuallyInvalidates) {
  MathProgram MP = makeMathProgram();
  VMOptions O = fastJit();
  O.MaxDeoptsPerMethod = 2;
  VirtualMachine VM(MP.P, O);
  // Warm abs with positives only: the negative branch gets pruned.
  for (int I = 1; I <= 10; ++I)
    VM.call(MP.Abs, {Value::makeInt(I)});
  ASSERT_NE(VM.compiledGraph(MP.Abs), nullptr);

  // Failing speculation deopts but stays correct...
  EXPECT_EQ(VM.call(MP.Abs, {Value::makeInt(-1)}).asInt(), 1);
  EXPECT_EQ(VM.runtime().metrics().Deopts, 1u);
  EXPECT_EQ(VM.call(MP.Abs, {Value::makeInt(-2)}).asInt(), 2);
  // ...and the third failure invalidates the method.
  EXPECT_EQ(VM.call(MP.Abs, {Value::makeInt(-3)}).asInt(), 3);
  EXPECT_EQ(VM.jitMetrics().Invalidations, 1u);
  EXPECT_EQ(VM.compiledGraph(MP.Abs), nullptr);

  // Re-profiling now sees both branches; the recompiled code no longer
  // speculates and handles negatives natively.
  for (int I = 0; I != 10; ++I)
    VM.call(MP.Abs, {Value::makeInt(I % 2 == 0 ? I : -I)});
  ASSERT_NE(VM.compiledGraph(MP.Abs), nullptr);
  uint64_t DeoptsBefore = VM.runtime().metrics().Deopts;
  EXPECT_EQ(VM.call(MP.Abs, {Value::makeInt(-9)}).asInt(), 9);
  EXPECT_EQ(VM.runtime().metrics().Deopts, DeoptsBefore);
}

TEST(VmTest, CacheWorkloadFullyTieredAcrossModes) {
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::FlowInsensitive,
        EscapeAnalysisMode::Partial}) {
    CacheProgram CP = makeCacheProgram(true);
    VirtualMachine VM(CP.P, fastJit(Mode));
    for (int I = 0; I != 200; ++I) {
      int K = (I / 2) % 4;
      Value V = VM.call(CP.GetValue,
                        {Value::makeInt(K), Value::makeRef(nullptr)});
      ASSERT_EQ(V.asRef()->slot(CP.BoxVal), Value::makeInt(K))
          << "mode=" << escapeAnalysisModeName(Mode) << " i=" << I;
    }
    EXPECT_NE(VM.compiledGraph(CP.GetValue), nullptr)
        << escapeAnalysisModeName(Mode);
  }
}

TEST(VmTest, PeaReducesAllocationsOnCacheWorkload) {
  uint64_t Allocs[3];
  uint64_t Monitors[3];
  int Idx = 0;
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::FlowInsensitive,
        EscapeAnalysisMode::Partial}) {
    CacheProgram CP = makeCacheProgram(true);
    VMOptions O = fastJit(Mode);
    // Let profiles mature before compiling: an early compile would see
    // too few receiver samples to devirtualize equals.
    O.CompileThreshold = 50;
    VirtualMachine VM(CP.P, O);
    // Warm up (hits and misses), then measure a hits-only phase.
    for (int I = 0; I != 100; ++I)
      VM.call(CP.GetValue,
              {Value::makeInt((I / 2) % 4), Value::makeRef(nullptr)});
    VM.runtime().resetMetrics();
    for (int I = 0; I != 1000; ++I)
      VM.call(CP.GetValue, {Value::makeInt(1), Value::makeRef(nullptr)});
    Allocs[Idx] = VM.runtime().heap().allocationCount();
    Monitors[Idx] = VM.runtime().metrics().MonitorOps;
    ++Idx;
  }
  // Hit-heavy phase: no EA allocates a Key per call and locks it in
  // equals; EES cannot help (the Key escapes on the miss path); PEA
  // eliminates both allocation and lock on the hit path entirely.
  EXPECT_EQ(Allocs[0], 1000u);
  EXPECT_EQ(Allocs[1], 1000u);
  EXPECT_EQ(Allocs[2], 0u);
  EXPECT_GE(Monitors[0], 2000u);
  EXPECT_EQ(Monitors[2], 0u);
}

TEST(VmTest, ChurnWorkloadAllocationFreeWithBothAnalyses) {
  for (EscapeAnalysisMode Mode : {EscapeAnalysisMode::FlowInsensitive,
                                  EscapeAnalysisMode::Partial}) {
    ChurnProgram CP = makeChurnProgram();
    VirtualMachine VM(CP.P, fastJit(Mode));
    for (int I = 0; I != 10; ++I)
      VM.call(CP.SumBoxes, {Value::makeInt(100)});
    ASSERT_NE(VM.compiledGraph(CP.SumBoxes), nullptr);
    VM.runtime().resetMetrics();
    EXPECT_EQ(VM.call(CP.SumBoxes, {Value::makeInt(10000)}).asInt(),
              49995000);
    EXPECT_EQ(VM.runtime().heap().allocationCount(), 0u)
        << escapeAnalysisModeName(Mode);
  }
}

TEST(VmTest, VirtualDispatchWorkloadWithDevirtAndDeopt) {
  ShapesProgram SP = makeShapesProgram();
  VirtualMachine VM(SP.P, fastJit());
  Value Circle = VM.call(SP.MakeCircle, {Value::makeInt(2)});
  // Monomorphic warmup: areaOf gets compiled with an inlined, guarded
  // Circle.area.
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(VM.call(SP.AreaOf, {Circle}).asInt(), 12);
  ASSERT_NE(VM.compiledGraph(SP.AreaOf), nullptr);
  // A Square now violates the speculation; after enough deopts the VM
  // re-profiles and recompiles polymorphically.
  Value Square = VM.call(SP.MakeSquare, {Value::makeInt(4)});
  for (int I = 0; I != 30; ++I) {
    EXPECT_EQ(VM.call(SP.AreaOf, {Square}).asInt(), 16);
    EXPECT_EQ(VM.call(SP.AreaOf, {Circle}).asInt(), 12);
  }
  EXPECT_GE(VM.jitMetrics().Invalidations, 1u);
}

TEST(VmTest, CompileNowAndJitMetrics) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, fastJit());
  VM.call(MP.SumTo, {Value::makeInt(3)});
  VM.compileNow(MP.SumTo);
  EXPECT_NE(VM.compiledGraph(MP.SumTo), nullptr);
  EXPECT_EQ(VM.jitMetrics().Compilations, 1u);
  EXPECT_GT(VM.jitMetrics().CompileNanos, 0u);
  VM.invalidate(MP.SumTo);
  EXPECT_EQ(VM.compiledGraph(MP.SumTo), nullptr);
}

TEST(VmTest, GcDuringTieredExecution) {
  ChurnProgram CP = makeChurnProgram();
  VMOptions O = fastJit(EscapeAnalysisMode::None);
  VirtualMachine VM(CP.P, O);
  for (int I = 0; I != 10; ++I)
    VM.call(CP.SumBoxes, {Value::makeInt(100)});
  // Without EA the compiled loop allocates 3M boxes (~72MB): the GC must
  // run while compiled code executes.
  EXPECT_EQ(VM.call(CP.SumBoxes, {Value::makeInt(3000000)}).isInt(), true);
  EXPECT_GE(VM.runtime().heap().gcRuns(), 1u);
}

} // namespace
