//===- interp_test.cpp - Tests for the profiling interpreter -----------------===//

#include "TestPrograms.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testprogs;

namespace {

/// Convenience: run one method of a fresh program.
Value runMethod(const Program &P, MethodId M, std::vector<Value> Args) {
  Runtime RT(P);
  ProfileData Prof(P.numMethods());
  Interpreter I(RT, Prof);
  return I.call(M, std::move(Args));
}

TEST(InterpMathTest, AbsAndMax) {
  MathProgram MP = makeMathProgram();
  EXPECT_EQ(runMethod(MP.P, MP.Abs, {Value::makeInt(-5)}).asInt(), 5);
  EXPECT_EQ(runMethod(MP.P, MP.Abs, {Value::makeInt(5)}).asInt(), 5);
  EXPECT_EQ(runMethod(MP.P, MP.Max,
                      {Value::makeInt(3), Value::makeInt(9)})
                .asInt(),
            9);
  EXPECT_EQ(runMethod(MP.P, MP.Max,
                      {Value::makeInt(9), Value::makeInt(3)})
                .asInt(),
            9);
}

TEST(InterpMathTest, LoopAndRecursion) {
  MathProgram MP = makeMathProgram();
  EXPECT_EQ(runMethod(MP.P, MP.SumTo, {Value::makeInt(100)}).asInt(), 5050);
  EXPECT_EQ(runMethod(MP.P, MP.SumTo, {Value::makeInt(0)}).asInt(), 0);
  EXPECT_EQ(runMethod(MP.P, MP.Fact, {Value::makeInt(10)}).asInt(), 3628800);
}

struct ArithCase {
  Opcode Op;
  int64_t X, Y, Expected;
};

class InterpArithTest : public ::testing::TestWithParam<ArithCase> {};

TEST_P(InterpArithTest, BinaryOpSemantics) {
  const ArithCase &C = GetParam();
  Program P;
  MethodId M = P.addMethod("op", NoClass, {ValueType::Int, ValueType::Int},
                           ValueType::Int);
  P.methodAt(M).Code = {{Opcode::Load, 0, 0},
                        {Opcode::Load, 1, 0},
                        {C.Op, 0, 0},
                        {Opcode::RetInt, 0, 0}};
  ASSERT_TRUE(verifyMethod(P, M).empty());
  EXPECT_EQ(
      runMethod(P, M, {Value::makeInt(C.X), Value::makeInt(C.Y)}).asInt(),
      C.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, InterpArithTest,
    ::testing::Values(
        ArithCase{Opcode::Add, 2, 3, 5}, ArithCase{Opcode::Add, -2, 2, 0},
        ArithCase{Opcode::Sub, 2, 3, -1}, ArithCase{Opcode::Mul, -4, 3, -12},
        ArithCase{Opcode::Div, 7, 2, 3}, ArithCase{Opcode::Div, 7, 0, 0},
        ArithCase{Opcode::Rem, 7, 3, 1}, ArithCase{Opcode::Rem, 7, 0, 0},
        ArithCase{Opcode::And, 0b1100, 0b1010, 0b1000},
        ArithCase{Opcode::Or, 0b1100, 0b1010, 0b1110},
        ArithCase{Opcode::Xor, 0b1100, 0b1010, 0b0110},
        ArithCase{Opcode::Shl, 1, 4, 16}, ArithCase{Opcode::Shl, 1, 64, 1},
        ArithCase{Opcode::Shr, -16, 2, -4}, ArithCase{Opcode::Shr, 16, 2, 4}));

TEST(InterpCacheTest, HitAndMissSemantics) {
  CacheProgram CP = makeCacheProgram(true);
  Runtime RT(CP.P);
  ProfileData Prof(CP.P.numMethods());
  Interpreter I(RT, Prof);

  // First call: miss, creates and caches a Box(7).
  Value V1 = I.call(CP.GetValue, {Value::makeInt(7), Value::makeRef(nullptr)});
  ASSERT_TRUE(V1.isRef());
  EXPECT_EQ(V1.asRef()->slot(CP.BoxVal), Value::makeInt(7));
  // Second call with the same key: hit, same Box returned.
  Value V2 = I.call(CP.GetValue, {Value::makeInt(7), Value::makeRef(nullptr)});
  EXPECT_EQ(V2.asRef(), V1.asRef());
  // Different key: miss again, new Box.
  Value V3 = I.call(CP.GetValue, {Value::makeInt(8), Value::makeRef(nullptr)});
  EXPECT_NE(V3.asRef(), V1.asRef());
  EXPECT_EQ(V3.asRef()->slot(CP.BoxVal), Value::makeInt(8));
}

TEST(InterpCacheTest, MonitorOpsAreCounted) {
  CacheProgram CP = makeCacheProgram(true);
  Runtime RT(CP.P);
  ProfileData Prof(CP.P.numMethods());
  Interpreter I(RT, Prof);
  I.call(CP.GetValue, {Value::makeInt(1), Value::makeRef(nullptr)});
  uint64_t After1 = RT.metrics().MonitorOps; // Miss with null cache: no equals.
  EXPECT_EQ(After1, 0u);
  I.call(CP.GetValue, {Value::makeInt(1), Value::makeRef(nullptr)});
  // Hit path runs synchronized equals once: enter + exit.
  EXPECT_EQ(RT.metrics().MonitorOps, 2u);
}

TEST(InterpVirtualTest, DispatchAndTypeProfiles) {
  ShapesProgram SP = makeShapesProgram();
  Runtime RT(SP.P);
  ProfileData Prof(SP.P.numMethods());
  Interpreter I(RT, Prof);

  Value Circle = I.call(SP.MakeCircle, {Value::makeInt(2)});
  Value Square = I.call(SP.MakeSquare, {Value::makeInt(4)});
  EXPECT_EQ(I.call(SP.AreaOf, {Circle}).asInt(), 12);
  EXPECT_EQ(I.call(SP.AreaOf, {Square}).asInt(), 16);

  const TypeProfile *TP = Prof.of(SP.AreaOf).receiversAt(1);
  ASSERT_NE(TP, nullptr);
  EXPECT_EQ(TP->total(), 2u);
  EXPECT_EQ(TP->monomorphicClass(), NoClass); // Two classes seen.

  EXPECT_EQ(I.call(SP.AreaOf, {Circle}).asInt(), 12);
  EXPECT_EQ(TP->Counts.at(SP.Circle), 2u);
}

TEST(InterpProfileTest, BranchCountsRecorded) {
  MathProgram MP = makeMathProgram();
  Runtime RT(MP.P);
  ProfileData Prof(MP.P.numMethods());
  Interpreter I(RT, Prof);
  for (int X = 0; X != 10; ++X)
    I.call(MP.Abs, {Value::makeInt(X)}); // 0..9: branch never taken.
  I.call(MP.Abs, {Value::makeInt(-3)});

  EXPECT_EQ(Prof.of(MP.Abs).InvocationCount, 11u);
  const BranchProfile *BP = Prof.of(MP.Abs).branchAt(2);
  ASSERT_NE(BP, nullptr);
  EXPECT_EQ(BP->Taken, 1u);
  EXPECT_EQ(BP->NotTaken, 10u);
  EXPECT_NEAR(BP->takenProbability(), 1.0 / 11, 1e-9);
}

TEST(InterpChurnTest, AllocationsMatchIterationCount) {
  ChurnProgram CP = makeChurnProgram();
  Runtime RT(CP.P);
  ProfileData Prof(CP.P.numMethods());
  Interpreter I(RT, Prof);
  EXPECT_EQ(I.call(CP.SumBoxes, {Value::makeInt(100)}).asInt(), 4950);
  EXPECT_EQ(RT.heap().allocationCount(), 100u);
}

TEST(InterpArrayTest, ArraysEndToEnd) {
  Program P;
  // reverseSum(n): fill arr[i] = i, then sum arr[n-1-i].
  MethodId M = P.addMethod("reverseSum", NoClass, {ValueType::Int},
                           ValueType::Int);
  CodeBuilder C(P, M);
  unsigned Arr = C.newLocal();
  unsigned I = C.newLocal();
  unsigned Sum = C.newLocal();
  Label Head1 = C.newLabel(), Exit1 = C.newLabel();
  Label Head2 = C.newLabel(), Exit2 = C.newLabel();
  C.load(0).newArrayInt().store(Arr);
  C.constI(0).store(I);
  C.bind(Head1);
  C.load(I).load(0).ifGe(Exit1);
  C.load(Arr).load(I).load(I).arrStoreInt();
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head1);
  C.bind(Exit1);
  C.constI(0).store(Sum);
  C.constI(0).store(I);
  C.bind(Head2);
  C.load(I).load(0).ifGe(Exit2);
  C.load(Sum).load(Arr).load(0).constI(1).sub().load(I).sub().arrLoadInt();
  C.add().store(Sum);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head2);
  C.bind(Exit2);
  C.load(Arr).arrLen().load(Sum).add().retInt();
  C.finish();
  ASSERT_TRUE(verifyMethod(P, M).empty());
  // sum 0..9 = 45, plus length 10 = 55.
  EXPECT_EQ(runMethod(P, M, {Value::makeInt(10)}).asInt(), 55);
}

TEST(InterpResumeTest, ReexecuteFrameRestartsInstruction) {
  MathProgram MP = makeMathProgram();
  Runtime RT(MP.P);
  ProfileData Prof(MP.P.numMethods());
  Interpreter I(RT, Prof);

  // Resume sumTo(10) at the loop head with sum=40, i=9: adds 9 and 10.
  ResumeFrame F;
  F.Method = MP.SumTo;
  F.Bci = 4; // Loop head (load I).
  F.Reexecute = true;
  F.Locals = {Value::makeInt(10), Value::makeInt(40), Value::makeInt(9)};
  EXPECT_EQ(I.resume({F}).asInt(), 59);
}

TEST(InterpResumeTest, ContinueAfterCallFeedsResult) {
  MathProgram MP = makeMathProgram();
  Runtime RT(MP.P);
  ProfileData Prof(MP.P.numMethods());
  Interpreter I(RT, Prof);

  // fact(n): bci 7 is `invokestatic fact`, bci 8 is `mul`.
  // Inner frame: fact(3) from scratch. Outer frame: continue inside
  // fact(4) after the recursive call with locals {4} and stack {4}.
  ResumeFrame Inner;
  Inner.Method = MP.Fact;
  Inner.Bci = 0;
  Inner.Reexecute = true;
  Inner.Locals = {Value::makeInt(3)};

  ResumeFrame Outer;
  Outer.Method = MP.Fact;
  Outer.Bci = 7;
  Outer.Reexecute = false;
  Outer.Locals = {Value::makeInt(4)};
  Outer.Stack = {Value::makeInt(4)};

  EXPECT_EQ(I.resume({Inner, Outer}).asInt(), 24);
}

TEST(InterpCallHandlerTest, HandlerInterceptsCalls) {
  MathProgram MP = makeMathProgram();
  Runtime RT(MP.P);
  ProfileData Prof(MP.P.numMethods());
  Interpreter I(RT, Prof);
  int Calls = 0;
  I.setCallHandler([&](MethodId Target, std::vector<Value> &&Args) {
    ++Calls;
    return I.call(Target, std::move(Args));
  });
  EXPECT_EQ(I.call(MP.Fact, {Value::makeInt(5)}).asInt(), 120);
  EXPECT_EQ(Calls, 4); // fact(4)..fact(1) dispatched through the handler.
}

TEST(InterpGcTest, InterpreterFramesAreRoots) {
  ChurnProgram CP = makeChurnProgram();
  Runtime RT(CP.P);
  ProfileData Prof(CP.P.numMethods());
  Interpreter I(RT, Prof);
  // Small threshold Heap is not exposed; instead run enough iterations to
  // trigger the default 64 MiB threshold: 3M boxes * 24 bytes = 72 MiB.
  EXPECT_EQ(I.call(CP.SumBoxes, {Value::makeInt(3000000)}).isInt(), true);
  EXPECT_GE(RT.heap().gcRuns(), 1u);
}

TEST(InterpMetricsTest, OpAndCallCounters) {
  MathProgram MP = makeMathProgram();
  Runtime RT(MP.P);
  ProfileData Prof(MP.P.numMethods());
  Interpreter I(RT, Prof);
  I.call(MP.Fact, {Value::makeInt(5)});
  EXPECT_EQ(RT.metrics().InterpretedCalls, 5u);
  EXPECT_GT(RT.metrics().InterpretedOps, 20u);
}

} // namespace
