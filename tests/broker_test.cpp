//===- broker_test.cpp - Background compile broker tests ----------------------===//
//
// Covers the CompileBroker subsystem: synchronous-mode compatibility,
// background installation, in-flight dedup, sync/background determinism
// (same profile snapshot => same graph), retired-code reclamation at
// safe points, and a call/invalidate stress test racing the mutator
// against installing workers. These tests carry the "concurrency" ctest
// label; run them under ThreadSanitizer via -DJVM_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "ir/Graph.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace jvm;
using namespace jvm::testprogs;

namespace {

VMOptions brokerOptions(unsigned Threads,
                        EscapeAnalysisMode Mode = EscapeAnalysisMode::Partial) {
  VMOptions O;
  O.CompileThreshold = 5;
  O.CompilerThreads = Threads;
  O.Compiler.EAMode = Mode;
  O.Compiler.PruneMinProfile = 5;
  O.Compiler.DevirtMinProfile = 5;
  return O;
}

TEST(BrokerTest, SynchronousModeMatchesLegacyBehavior) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, brokerOptions(0));
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(VM.call(MP.SumTo, {Value::makeInt(10)}).asInt(), 55);
  // Code is installed at the threshold crossing, before call() returns:
  // no waitForCompilerIdle needed (and it must be a no-op).
  EXPECT_NE(VM.compiledGraph(MP.SumTo), nullptr);
  VM.waitForCompilerIdle();
  const JitMetrics &J = VM.jitMetrics();
  EXPECT_EQ(J.Compilations, 1u);
  // The whole pipeline ran on the mutator thread.
  EXPECT_GT(J.MutatorStallNanos, 0u);
  EXPECT_GE(J.MutatorStallNanos, J.PhaseNanos.nanosFor("build"));
  // Phase accounting covers the pipeline, one row per phase name.
  EXPECT_GT(J.PhaseNanos.nanosFor("build"), 0u);
  EXPECT_EQ(J.PhaseNanos.runsFor("build"), 1u);
  EXPECT_GT(J.PhaseNanos.runsFor("canon"), 1u); // ran again in cleanup
  EXPECT_GT(J.PhaseNanos.nanosFor("escape-partial"), 0u);
  EXPECT_LE(J.PhaseNanos.totalNanos(), J.CompileNanos);
  EXPECT_GE(J.EnqueueToInstallNanosMax, 1u);
}

TEST(BrokerTest, BackgroundCompileInstallsAndKeepsResultsCorrect) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, brokerOptions(2));
  // The interpreter keeps answering while the compile is in flight.
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(VM.call(MP.SumTo, {Value::makeInt(10)}).asInt(), 55);
  VM.waitForCompilerIdle();
  EXPECT_NE(VM.compiledGraph(MP.SumTo), nullptr);
  // Compiled code answers the same.
  EXPECT_EQ(VM.call(MP.SumTo, {Value::makeInt(100)}).asInt(), 5050);
  const JitMetrics &J = VM.jitMetrics();
  EXPECT_GE(J.Compilations, 1u);
  EXPECT_GE(J.QueueDepthHighWater, 1u);
  EXPECT_GT(J.EnqueueToInstallNanos, 0u);
  EXPECT_GE(J.EnqueueToInstallNanosMax, 1u);
  // The pipeline ran off-thread: the mutator paid only snapshot+enqueue.
  EXPECT_LT(J.MutatorStallNanos, J.CompileNanos);
}

TEST(BrokerTest, InFlightDedupCompilesOnce) {
  MathProgram MP = makeMathProgram();
  // One worker: requests issued while the first compile runs would pile
  // up without dedup (SumTo calls nothing, so exactly one graph exists).
  VirtualMachine VM(MP.P, brokerOptions(1));
  for (int I = 0; I != 200; ++I)
    VM.call(MP.SumTo, {Value::makeInt(10)});
  VM.waitForCompilerIdle();
  EXPECT_EQ(VM.jitMetrics().Compilations, 1u);
  EXPECT_EQ(VM.jitMetrics().CompilesDiscarded, 0u);
}

TEST(BrokerTest, RetiredGraphsReclaimedAtSafePoint) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, brokerOptions(0));
  VM.call(MP.SumTo, {Value::makeInt(3)});
  VM.compileNow(MP.SumTo);
  ASSERT_NE(VM.compiledGraph(MP.SumTo), nullptr);
  VM.invalidate(MP.SumTo);
  EXPECT_EQ(VM.compiledGraph(MP.SumTo), nullptr);
  EXPECT_EQ(VM.jitMetrics().RetiredReclaimed, 0u);
  // The next top-level call is a safe point: no compiled activation is
  // on the stack, so the retired graph is freed.
  VM.call(MP.SumTo, {Value::makeInt(3)});
  EXPECT_EQ(VM.jitMetrics().RetiredReclaimed, 1u);
}

TEST(BrokerTest, ForcedCompileDiscardsInFlightResult) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, brokerOptions(0));
  VM.call(MP.SumTo, {Value::makeInt(3)});
  VM.compileNow(MP.SumTo);
  // Re-forcing bumps the code version and replaces the old graph, which
  // is retired, not leaked, and reclaimed at the next safe point.
  VM.compileNow(MP.SumTo);
  EXPECT_EQ(VM.jitMetrics().Compilations, 2u);
  VM.call(MP.SumTo, {Value::makeInt(3)});
  EXPECT_GE(VM.jitMetrics().RetiredReclaimed, 1u);
}

/// One deterministic drive of a VM; returns per-call results so sync and
/// background configurations can be compared call for call.
struct RunOutcome {
  std::vector<int64_t> Results;
  /// Live-node count per compiled method (methods without code omitted).
  std::map<MethodId, unsigned> NodeCounts;
  uint64_t Invalidations = 0;
};

template <typename DriveFn>
RunOutcome runConfig(const Program &P, unsigned Threads, DriveFn Drive) {
  VirtualMachine VM(P, brokerOptions(Threads));
  RunOutcome O;
  Drive(VM, O.Results);
  VM.waitForCompilerIdle();
  for (MethodId M = 0, E = static_cast<MethodId>(P.numMethods()); M != E; ++M)
    if (const Graph *G = VM.compiledGraph(M))
      O.NodeCounts[M] = G->numLiveNodes();
  O.Invalidations = VM.jitMetrics().Invalidations;
  return O;
}

/// Compilation input is fixed at enqueue time (the profile snapshot), so
/// a background compile must produce the exact graph a synchronous
/// compile at the same trigger point produces. Methods that tier up in
/// the sync run must tier up in the background run too (the background
/// run interprets at least as much, so hotness only grows); the
/// background run may additionally compile callees that sync-mode
/// freezes early by inlining them into their caller before they cross
/// the threshold themselves.
template <typename DriveFn>
void expectDeterministicAcrossConfigs(const Program &P, DriveFn Drive,
                                      const char *Tag) {
  RunOutcome Sync = runConfig(P, 0, Drive);
  RunOutcome Background = runConfig(P, 4, Drive);

  ASSERT_EQ(Sync.Results.size(), Background.Results.size()) << Tag;
  for (size_t I = 0; I != Sync.Results.size(); ++I)
    ASSERT_EQ(Sync.Results[I], Background.Results[I])
        << Tag << " call #" << I;

  EXPECT_EQ(Sync.Invalidations, 0u) << Tag;
  EXPECT_EQ(Background.Invalidations, 0u) << Tag;

  for (const auto &[M, SyncNodes] : Sync.NodeCounts) {
    auto It = Background.NodeCounts.find(M);
    ASSERT_NE(It, Background.NodeCounts.end())
        << Tag << ": m" << M << " compiled sync but not in background mode";
    EXPECT_EQ(SyncNodes, It->second)
        << Tag << ": m" << M
        << " compiled to a different graph in background mode";
  }
}

TEST(BrokerDeterminismTest, MathProgram) {
  MathProgram MP = makeMathProgram();
  expectDeterministicAcrossConfigs(
      MP.P,
      [&](VirtualMachine &VM, std::vector<int64_t> &Out) {
        for (int I = 0; I != 20; ++I) {
          Out.push_back(VM.call(MP.SumTo, {Value::makeInt(10 + I)}).asInt());
          // fact(3) reaches the base case before the compile threshold
          // (recursive calls re-enter call(), so a deep first recursion
          // would trigger a compile before n<=1 was ever profiled,
          // prune the base case, and deopt — the same one-sidedness
          // hazard as Max below).
          Out.push_back(VM.call(MP.Fact, {Value::makeInt(3)}).asInt());
          Out.push_back(VM.call(MP.Abs, {Value::makeInt(I % 7 + 1)}).asInt());
          // Alternate which argument wins so the compare never prunes to
          // a one-sided speculation (this workload must be deopt-free:
          // an invalidation would make graph comparison meaningless).
          Out.push_back(VM.call(MP.Max, {Value::makeInt(I % 2 == 0 ? 3 : 11),
                                         Value::makeInt(7)})
                            .asInt());
        }
      },
      "math");
}

TEST(BrokerDeterminismTest, CacheProgram) {
  CacheProgram CP = makeCacheProgram(true);
  expectDeterministicAcrossConfigs(
      CP.P,
      [&](VirtualMachine &VM, std::vector<int64_t> &Out) {
        for (int I = 0; I != 200; ++I) {
          int K = (I / 2) % 4;
          Value V = VM.call(CP.GetValue,
                            {Value::makeInt(K), Value::makeRef(nullptr)});
          Out.push_back(V.asRef()->slot(CP.BoxVal).asInt());
        }
      },
      "cache");
}

TEST(BrokerDeterminismTest, ChurnProgram) {
  ChurnProgram CP = makeChurnProgram();
  expectDeterministicAcrossConfigs(
      CP.P,
      [&](VirtualMachine &VM, std::vector<int64_t> &Out) {
        for (int I = 0; I != 20; ++I)
          Out.push_back(VM.call(CP.SumBoxes, {Value::makeInt(100)}).asInt());
      },
      "churn");
}

TEST(BrokerDeterminismTest, ShapesProgram) {
  ShapesProgram SP = makeShapesProgram();
  expectDeterministicAcrossConfigs(
      SP.P,
      [&](VirtualMachine &VM, std::vector<int64_t> &Out) {
        Value Circle = VM.call(SP.MakeCircle, {Value::makeInt(2)});
        for (int I = 0; I != 30; ++I)
          Out.push_back(VM.call(SP.AreaOf, {Circle}).asInt());
      },
      "shapes");
}

TEST(BrokerStressTest, CallAndInvalidateWhileWorkersInstall) {
  CacheProgram CP = makeCacheProgram(true);
  VirtualMachine VM(CP.P, brokerOptions(4));
  // The mutator hammers call() while invalidating in two flavors:
  // blindly mid-flight (racing the installers) and deterministically
  // after a quiesce (guaranteeing installed code is actually retired).
  for (int Round = 0; Round != 30; ++Round) {
    for (int I = 0; I != 40; ++I) {
      int K = (I / 2) % 4;
      Value V = VM.call(CP.GetValue,
                        {Value::makeInt(K), Value::makeRef(nullptr)});
      ASSERT_EQ(V.asRef()->slot(CP.BoxVal).asInt(), K)
          << "round " << Round << " i " << I;
    }
    if (Round % 3 == 1) {
      // Racy invalidate: may hit installed code, a compile in flight,
      // or nothing.
      VM.invalidate(CP.GetValue);
      VM.invalidate(CP.Equals);
    } else if (Round % 3 == 2) {
      VM.waitForCompilerIdle();
      VM.invalidate(CP.GetValue);
    }
  }
  VM.waitForCompilerIdle();
  const JitMetrics &J = VM.jitMetrics();
  // Code was installed, retired and re-installed repeatedly...
  EXPECT_GE(J.Compilations, 2u);
  EXPECT_GE(J.Invalidations, 9u);
  // ...and every retirement was reclaimed at a later safe point.
  EXPECT_GE(J.RetiredReclaimed, 1u);
  // Final state still answers correctly from fresh code.
  for (int I = 0; I != 8; ++I) {
    int K = I % 4;
    Value V =
        VM.call(CP.GetValue, {Value::makeInt(K), Value::makeRef(nullptr)});
    EXPECT_EQ(V.asRef()->slot(CP.BoxVal).asInt(), K);
  }
}

TEST(BrokerStressTest, ManyMethodsCompeteForWorkers) {
  // Four hot methods, one worker: the hotness-prioritized queue must
  // drain them all and dedup must keep each to one compilation per
  // code version.
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, brokerOptions(1));
  auto allCompiled = [&] {
    return VM.compiledGraph(MP.SumTo) && VM.compiledGraph(MP.Abs) &&
           VM.compiledGraph(MP.Max) && VM.compiledGraph(MP.Fact);
  };
  // A speculation failure on the loop's last calls can invalidate a
  // method after its install, leaving it uncompiled when the loop ends;
  // warm again until code sticks (the interpreted re-runs profile both
  // branch sides, so the recompile has nothing left to speculate on).
  for (int Round = 0; Round != 8 && (Round == 0 || !allCompiled()); ++Round) {
    for (int I = 0; I != 100; ++I) {
      VM.call(MP.SumTo, {Value::makeInt(10)});
      VM.call(MP.Abs, {Value::makeInt(I % 9 + 1)});
      VM.call(MP.Max, {Value::makeInt(I), Value::makeInt(7)});
      VM.call(MP.Fact, {Value::makeInt(6)});
    }
    VM.waitForCompilerIdle();
  }
  EXPECT_NE(VM.compiledGraph(MP.SumTo), nullptr);
  EXPECT_NE(VM.compiledGraph(MP.Abs), nullptr);
  EXPECT_NE(VM.compiledGraph(MP.Max), nullptr);
  EXPECT_NE(VM.compiledGraph(MP.Fact), nullptr);
  // Dedup means one install per code version. An early profile snapshot
  // can speculate on a one-sided branch, deopt past MaxDeoptsPerMethod
  // once the compiled code sees the other side, and recompile — that is
  // an invalidation-driven recompile, not a dedup failure, and whether
  // it happens depends on where the install lands in the warmup loop.
  const JitMetrics &J = VM.jitMetrics();
  EXPECT_GE(J.Compilations, 4u);
  EXPECT_LE(J.Compilations, 4u + J.Invalidations);
}

} // namespace
