//===- isolate_test.cpp - Multi-isolate / process-broker tests -----------------===//
//
// Covers the isolate refactor: per-tenant state independence (heaps,
// profiles, metrics, installed code), the process-wide CompileBroker's
// client lifecycle (register/unregister, constant worker pool), and the
// multi-tenant driver's determinism — N isolates × M app threads over a
// mixed Table 1 workload must reproduce exactly the checksum a plain
// single-tenant VirtualMachine computes, including under GC stress
// (scavenge before every allocation). These tests carry the "isolate"
// and "concurrency" ctest labels; run them under ThreadSanitizer via
// -DJVM_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "vm/CompileBroker.h"
#include "vm/Isolate.h"
#include "workloads/MultiTenant.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace jvm;
using namespace jvm::testprogs;
using namespace jvm::workloads;

namespace {

VMOptions syncOptions() {
  VMOptions O;
  O.CompileThreshold = 5;
  O.CompilerThreads = 0; // synchronous: never touches the broker
  return O;
}

VMOptions asyncOptions() {
  VMOptions O;
  O.CompileThreshold = 5;
  O.CompilerThreads = 1; // any nonzero value = the shared process broker
  return O;
}

/// True if \p Json contains the exact "key": value pair.
bool jsonHas(const std::string &Json, const std::string &Key, uint64_t V) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "\"%s\": %llu", Key.c_str(),
                static_cast<unsigned long long>(V));
  return Json.find(Buf) != std::string::npos;
}

TEST(IsolateTest, IdsAreProcessUniqueAndNeverReused) {
  MathProgram MP = makeMathProgram();
  std::set<uint32_t> Seen;
  uint32_t Last = 0;
  for (int Round = 0; Round != 3; ++Round) {
    // Fresh isolates every round: destruction must not recycle ids.
    Isolate A(MP.P, syncOptions());
    Isolate B(MP.P, syncOptions());
    for (uint32_t Id : {A.id(), B.id()}) {
      EXPECT_NE(Id, 0u);
      EXPECT_GT(Id, Last);
      EXPECT_TRUE(Seen.insert(Id).second) << "id " << Id << " reused";
    }
    Last = B.id();
  }
}

TEST(IsolateTest, HeapAndProfileStateIsPerIsolate) {
  MathProgram MP = makeMathProgram();
  Isolate Busy(MP.P, syncOptions());
  Isolate Idle(MP.P, syncOptions());

  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(Busy.call(MP.SumTo, {Value::makeInt(10)}).asInt(), 55);

  // Busy compiled and counted; Idle observed nothing.
  EXPECT_NE(Busy.compiledGraph(MP.SumTo), nullptr);
  EXPECT_EQ(Idle.compiledGraph(MP.SumTo), nullptr);
  EXPECT_EQ(Busy.jitMetrics().Compilations, 1u);
  EXPECT_EQ(Idle.jitMetrics().Compilations, 0u);
  EXPECT_GT(Busy.runtime().metrics().InterpretedCalls, 0u);
  EXPECT_EQ(Idle.runtime().metrics().InterpretedCalls, 0u);

  // Heap counters are per-tenant too: allocate in one isolate only.
  ChurnProgram CP = makeChurnProgram();
  Isolate HeapA(CP.P, syncOptions());
  Isolate HeapB(CP.P, syncOptions());
  uint64_t Before = HeapB.runtime().heap().allocationCount();
  EXPECT_EQ(HeapA.call(CP.SumBoxes, {Value::makeInt(16)}).asInt(), 120);
  EXPECT_GT(HeapA.runtime().heap().allocationCount(), 0u);
  EXPECT_EQ(HeapB.runtime().heap().allocationCount(), Before);
}

TEST(IsolateTest, MetricsRecordsCarryTheIsolateId) {
  MathProgram MP = makeMathProgram();
  Isolate A(MP.P, syncOptions());
  Isolate B(MP.P, syncOptions());
  A.call(MP.SumTo, {Value::makeInt(5)});

  // Each record names its tenant, so JVM_METRICS_JSON output from one
  // process never collides between isolates (satellite: metric-name
  // collision fix).
  std::string JsonA = A.dumpMetricsJson();
  std::string JsonB = B.dumpMetricsJson();
  EXPECT_TRUE(jsonHas(JsonA, "isolate.id", A.id())) << JsonA;
  EXPECT_TRUE(jsonHas(JsonB, "isolate.id", B.id())) << JsonB;
  EXPECT_FALSE(jsonHas(JsonB, "isolate.id", A.id())) << JsonB;
}

TEST(IsolateTest, ProcessBrokerSharedByAllIsolates) {
  MathProgram MP = makeMathProgram();
  CompileBroker &Broker = CompileBroker::process();
  unsigned Workers = Broker.numThreads();
  EXPECT_GE(Workers, 1u);
  size_t Clients = Broker.numClients();
  {
    Isolate A(MP.P, asyncOptions());
    Isolate B(MP.P, asyncOptions());
    Isolate C(MP.P, asyncOptions());
    // Three tenants, zero new compiler threads: the pool is process-wide.
    EXPECT_EQ(Broker.numClients(), Clients + 3);
    EXPECT_EQ(Broker.numThreads(), Workers);

    // All three compile through the shared pool and install privately.
    for (Isolate *Iso : {&A, &B, &C})
      for (int I = 0; I != 20; ++I)
        EXPECT_EQ(Iso->call(MP.SumTo, {Value::makeInt(10)}).asInt(), 55);
    for (Isolate *Iso : {&A, &B, &C}) {
      Iso->waitForCompilerIdle();
      EXPECT_NE(Iso->compiledGraph(MP.SumTo), nullptr);
      EXPECT_GE(Iso->jitMetrics().Compilations, 1u);
    }
  }
  // Destruction unregistered every client; the pool is untouched.
  EXPECT_EQ(Broker.numClients(), Clients);
  EXPECT_EQ(Broker.numThreads(), Workers);
}

TEST(IsolateTest, UnregisterDropsQueuedWorkSafely) {
  MathProgram MP = makeMathProgram();
  // Construct/destruct isolates with enqueued-but-possibly-unfinished
  // compiles in a loop: the destructor must drain the client's queue
  // and wait out in-flight compiles without a worker touching freed
  // per-tenant state (the TSan build is the real referee here).
  for (int Round = 0; Round != 8; ++Round) {
    Isolate Iso(MP.P, asyncOptions());
    for (int I = 0; I != 6; ++I)
      EXPECT_EQ(Iso.call(MP.SumTo, {Value::makeInt(10)}).asInt(), 55);
    // No waitForCompilerIdle: teardown races the in-flight compile.
  }
}

TEST(IsolateTest, MultiTenantMatchesSingleTenantChecksum) {
  BenchmarkSet Set = buildBenchmarkSet();
  MultiTenantOptions Opts;
  Opts.Isolates = 3;
  Opts.ThreadsPerIsolate = 2;
  Opts.OpsPerThread = 8;
  int64_t Expected = expectedChecksum(Set, Opts);

  MultiTenantResult R = runMultiTenant(Set, Opts);
  ASSERT_EQ(R.PerIsolate.size(), 3u);
  std::set<uint32_t> Ids;
  for (const MultiTenantResult::IsolateStats &S : R.PerIsolate) {
    // Acceptance criterion: multi-tenancy does not change single-tenant
    // behavior — every tenant reproduces the plain-VM checksum.
    EXPECT_EQ(S.Checksum, Expected) << "isolate " << S.Id;
    EXPECT_EQ(S.Ops, Opts.ThreadsPerIsolate * Opts.OpsPerThread);
    EXPECT_GT(S.HeapAllocations, 0u);
    EXPECT_TRUE(Ids.insert(S.Id).second);
  }
  EXPECT_EQ(R.TotalOps, 3u * 2u * 8u);
  EXPECT_GE(R.BrokerThreads, 1u);
  EXPECT_GT(R.OpLatencyP99Ns, 0u);
  EXPECT_GE(R.OpLatencyP99Ns, R.OpLatencyP50Ns);

  // And a 1-isolate run of the same driver matches too (the shape the
  // bench's differential gate uses).
  MultiTenantOptions One = Opts;
  One.Isolates = 1;
  MultiTenantResult R1 = runMultiTenant(Set, One);
  ASSERT_EQ(R1.PerIsolate.size(), 1u);
  EXPECT_EQ(R1.PerIsolate[0].Checksum, Expected);
}

TEST(IsolateTest, MultiTenantDeterministicUnderGcStress) {
  BenchmarkSet Set = buildBenchmarkSet();
  MultiTenantOptions Opts;
  Opts.Isolates = 2;
  Opts.ThreadsPerIsolate = 2;
  Opts.OpsPerThread = 3;
  // Tiny ops (scale 24000/8000 = 3 kernel elements) so "scavenge before
  // EVERY allocation" stays affordable; small young space so promotion
  // paths run too. Same JVM_GC_STRESS=1 semantics, set directly on the
  // per-isolate config (the env snapshot is process-wide and already
  // captured).
  Opts.ScaleDivisor = 8000;
  Opts.VM.Memory.StressGc = true;
  Opts.VM.Memory.RegionBytes = 64 << 10;
  Opts.VM.Memory.YoungBytes = 256 << 10;
  int64_t Expected = expectedChecksum(Set, Opts);

  MultiTenantResult R = runMultiTenant(Set, Opts);
  ASSERT_EQ(R.PerIsolate.size(), 2u);
  for (const MultiTenantResult::IsolateStats &S : R.PerIsolate) {
    EXPECT_EQ(S.Checksum, Expected) << "isolate " << S.Id;
    // Stress mode means every tenant really collected, independently.
    EXPECT_GT(S.GcRuns, 0u) << "isolate " << S.Id;
  }
}

TEST(IsolateTest, ConcurrentIsolatesOnDistinctThreads) {
  // One mutator thread per isolate, all running the allocation-churn
  // program at once against the shared broker: the cross-isolate
  // concurrency shape (no app-thread serialization needed because no
  // isolate is shared). TSan referees the shared services.
  ChurnProgram CP = makeChurnProgram();
  constexpr int NumIsolates = 4;
  std::vector<std::thread> Threads;
  std::vector<int64_t> Sums(NumIsolates, 0);
  for (int T = 0; T != NumIsolates; ++T)
    Threads.emplace_back([&, T] {
      VMOptions O = asyncOptions();
      O.Memory.RegionBytes = 64 << 10;
      O.Memory.YoungBytes = 256 << 10;
      Isolate Iso(CP.P, O);
      int64_t Sum = 0;
      for (int I = 0; I != 200; ++I)
        Sum += Iso.call(CP.SumBoxes, {Value::makeInt(I % 32)}).asInt();
      Sums[T] = Sum;
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 1; T != NumIsolates; ++T)
    EXPECT_EQ(Sums[T], Sums[0]);
}

} // namespace
