//===- workloads_test.cpp - Benchmark workload validation ----------------------===//
//
// Every synthetic benchmark row must (a) verify as bytecode, (b) compute
// the same checksum under interpretation and under every escape-analysis
// mode, and (c) never allocate *more* under partial escape analysis —
// the paper's "at most as many dynamic allocations as in the original
// code" guarantee.
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::workloads;

namespace {

const BenchmarkSet &sharedSet() {
  static BenchmarkSet Set = buildBenchmarkSet();
  return Set;
}

TEST(WorkloadProgramTest, BuildsAndVerifies) {
  const BenchmarkSet &Set = sharedSet();
  EXPECT_GT(Set.WP.P.numMethods(), 15u);
  EXPECT_EQ(Set.Rows.size(), 14u + 12u + 1u); // DaCapo + Scala + SPECjbb.
}

TEST(WorkloadProgramTest, SuitesAreComplete) {
  const BenchmarkSet &Set = sharedSet();
  unsigned DaCapo = 0, Scala = 0, Jbb = 0;
  for (const BenchmarkRow &R : Set.Rows) {
    DaCapo += R.Suite == "dacapo";
    Scala += R.Suite == "scaladacapo";
    Jbb += R.Suite == "specjbb2005";
  }
  EXPECT_EQ(DaCapo, 14u);
  EXPECT_EQ(Scala, 12u);
  EXPECT_EQ(Jbb, 1u);
  EXPECT_NE(Set.find("factorie"), nullptr);
  EXPECT_EQ(Set.find("nonexistent"), nullptr);
}

TEST(WorkloadKernelTest, KernelChecksumsAreDeterministic) {
  const BenchmarkSet &Set = sharedSet();
  // Two interpreted runs in fresh VMs produce identical results.
  int64_t Sums[2];
  for (int R = 0; R != 2; ++R) {
    VMOptions VO;
    VO.EnableJit = false;
    VirtualMachine VM(Set.WP.P, VO);
    VM.call(Set.WP.Setup, {});
    int64_t Sum = 0;
    for (MethodId K : {Set.WP.CacheLookup, Set.WP.BoxedSum, Set.WP.PairChurn,
                       Set.WP.IterSum, Set.WP.BuilderFill,
                       Set.WP.Transactions, Set.WP.FlatWork, Set.WP.SyncWork})
      Sum += VM.call(K, {Value::makeInt(500), Value::makeInt(8)}).asInt();
    Sums[R] = Sum;
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

/// Parameterized over all benchmark rows: semantics must not depend on
/// the escape-analysis mode, and PEA must never allocate more.
class RowConsistencyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RowConsistencyTest, ModesAgreeAndPeaNeverAllocatesMore) {
  const BenchmarkSet &Set = sharedSet();
  const BenchmarkRow &Row = Set.Rows[GetParam()];
  const int64_t Scale = 2000; // Small but enough to tier up.

  int64_t Checksum[3];
  uint64_t Allocs[3];
  int Idx = 0;
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::FlowInsensitive,
        EscapeAnalysisMode::Partial}) {
    VMOptions VO;
    VO.CompileThreshold = 100;
    VO.CompilerThreads = 0; // Exact-count assertions need sync compiles.
    VO.Compiler.EAMode = Mode;
    VirtualMachine VM(Set.WP.P, VO);
    VM.call(Set.WP.Setup, {});
    std::vector<Value> Args{Value::makeInt(Scale)};
    for (int I = 0; I != 4; ++I)
      VM.call(Row.Driver, Args);
    VM.runtime().resetMetrics();
    int64_t Sum = 0;
    for (int I = 0; I != 3; ++I)
      Sum += VM.call(Row.Driver, Args).asInt();
    Checksum[Idx] = Sum;
    Allocs[Idx] = VM.runtime().heap().allocationCount();
    ++Idx;
  }
  EXPECT_EQ(Checksum[0], Checksum[1]) << Row.Name;
  EXPECT_EQ(Checksum[0], Checksum[2]) << Row.Name;
  EXPECT_LE(Allocs[2], Allocs[0]) << Row.Name << ": PEA allocated more";
  EXPECT_LE(Allocs[1], Allocs[0]) << Row.Name << ": EES allocated more";
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, RowConsistencyTest, ::testing::Range(0u, 27u),
    [](const ::testing::TestParamInfo<unsigned> &Info) {
      return sharedSet().Rows[Info.param].Name;
    });

TEST(HarnessTest, MeasureRowProducesSaneMetrics) {
  const BenchmarkSet &Set = sharedSet();
  HarnessOptions Opts;
  Opts.WarmupIters = 2;
  Opts.MeasureIters = 2;
  Opts.Repeats = 1;
  const BenchmarkRow *Row = Set.find("factorie");
  ASSERT_NE(Row, nullptr);
  RowMeasurement None = measureRow(Set, *Row, EscapeAnalysisMode::None, Opts);
  RowMeasurement Pea =
      measureRow(Set, *Row, EscapeAnalysisMode::Partial, Opts);
  EXPECT_GT(None.KBPerIter, 0);
  EXPECT_GT(None.ItersPerMinute, 0);
  EXPECT_EQ(None.Checksum, Pea.Checksum);
  // factorie is the headline row: PEA cuts its bytes by more than half.
  EXPECT_LT(Pea.KBPerIter, None.KBPerIter * 0.6);
}

TEST(HarnessTest, PercentDelta) {
  EXPECT_DOUBLE_EQ(percentDelta(100, 50), -50.0);
  EXPECT_DOUBLE_EQ(percentDelta(50, 100), 100.0);
  EXPECT_DOUBLE_EQ(percentDelta(0, 10), 0.0);
}

TEST(HarnessTest, Table1FormattingContainsRowsAndAverage) {
  const BenchmarkSet &Set = sharedSet();
  RowComparison C;
  C.Row = Set.find("fop");
  C.Without.KBPerIter = 100;
  C.With.KBPerIter = 90;
  C.Without.KAllocsPerIter = 10;
  C.With.KAllocsPerIter = 8;
  C.Without.ItersPerMinute = 1000;
  C.With.ItersPerMinute = 1100;
  std::string Text = formatTable1Block("DaCapo", {C});
  EXPECT_NE(Text.find("fop"), std::string::npos);
  EXPECT_NE(Text.find("average"), std::string::npos);
  EXPECT_NE(Text.find("-10.0%"), std::string::npos);
  EXPECT_NE(Text.find("+10.0%"), std::string::npos);
}

TEST(HarnessTest, LockTableFormatting) {
  const BenchmarkSet &Set = sharedSet();
  RowComparison C;
  C.Row = Set.find("tomcat");
  C.Without.MonitorOpsPerIter = 1000;
  C.With.MonitorOpsPerIter = 960;
  std::string Text = formatLockTable({C});
  EXPECT_NE(Text.find("tomcat"), std::string::npos);
  EXPECT_NE(Text.find("-4.0%"), std::string::npos);
}

TEST(WorkloadLockTest, ValidateLocksElidedOnlyByPea) {
  const BenchmarkSet &Set = sharedSet();
  uint64_t Monitors[3];
  int Idx = 0;
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::FlowInsensitive,
        EscapeAnalysisMode::Partial}) {
    VMOptions VO;
    VO.CompileThreshold = 50;
    VO.CompilerThreads = 0; // Exact-count assertions need sync compiles.
    VO.Compiler.EAMode = Mode;
    VirtualMachine VM(Set.WP.P, VO);
    VM.call(Set.WP.Setup, {});
    for (int I = 0; I != 4; ++I)
      VM.call(Set.WP.Transactions, {Value::makeInt(2000), Value::makeInt(4096)});
    VM.runtime().resetMetrics();
    VM.call(Set.WP.Transactions, {Value::makeInt(2000), Value::makeInt(4096)});
    Monitors[Idx++] = VM.runtime().metrics().MonitorOps;
  }
  EXPECT_GT(Monitors[0], 0u);  // Validate locks taken without EA.
  EXPECT_GT(Monitors[1], 0u);  // Orders escape (rarely) -> EES keeps all.
  EXPECT_EQ(Monitors[2], 0u);  // PEA elides the virtual-object locks.
}

} // namespace
