//===- ir_test.cpp - Tests for the sea-of-nodes IR --------------------------===//

#include "ir/Graph.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace jvm;

namespace {

/// Builds:  Start -> If(P0) -> (B1: End1, B2: End2) -> Merge
///          Phi(merge, 1, 2); Return Phi
struct DiamondGraph {
  Graph G{/*Method=*/0, {ValueType::Int}};
  IfNode *If = nullptr;
  BeginNode *TrueB = nullptr;
  BeginNode *FalseB = nullptr;
  EndNode *End1 = nullptr;
  EndNode *End2 = nullptr;
  MergeNode *Merge = nullptr;
  PhiNode *Phi = nullptr;
  ReturnNode *Ret = nullptr;

  DiamondGraph() {
    If = G.create<IfNode>(G.param(0));
    G.start()->setNext(If);
    TrueB = G.create<BeginNode>();
    FalseB = G.create<BeginNode>();
    If->setTrueSuccessor(TrueB);
    If->setFalseSuccessor(FalseB);
    End1 = G.create<EndNode>();
    End2 = G.create<EndNode>();
    TrueB->setNext(End1);
    FalseB->setNext(End2);
    Merge = G.create<MergeNode>();
    Merge->addEnd(End1);
    Merge->addEnd(End2);
    Phi = G.create<PhiNode>(Merge, ValueType::Int);
    Phi->appendValue(G.intConstant(1));
    Phi->appendValue(G.intConstant(2));
    Ret = G.create<ReturnNode>(Phi);
    Merge->setNext(Ret);
  }
};

TEST(NodeTest, InputsAndUsagesStaySymmetric) {
  Graph G(0, {ValueType::Int, ValueType::Int});
  auto *Add = G.create<ArithNode>(ArithKind::Add, G.param(0), G.param(1));
  ASSERT_EQ(Add->numInputs(), 2u);
  EXPECT_EQ(Add->input(0), G.param(0));
  EXPECT_EQ(G.param(0)->numUsages(), 1u);
  EXPECT_EQ(G.param(0)->usages().front(), Add);

  Add->setInput(0, G.param(1));
  EXPECT_EQ(G.param(0)->numUsages(), 0u);
  EXPECT_EQ(G.param(1)->numUsages(), 2u);
}

TEST(NodeTest, ReplaceAtAllUsagesRewritesEveryOccurrence) {
  Graph G(0, {ValueType::Int});
  Node *P = G.param(0);
  auto *A = G.create<ArithNode>(ArithKind::Add, P, P);
  auto *B = G.create<ArithNode>(ArithKind::Mul, P, G.intConstant(3));
  Node *C = G.intConstant(7);
  P->replaceAtAllUsages(C);
  EXPECT_EQ(A->x(), C);
  EXPECT_EQ(A->y(), C);
  EXPECT_EQ(B->x(), C);
  EXPECT_FALSE(P->hasUsages());
  EXPECT_EQ(C->numUsages(), 3u);
}

TEST(NodeTest, NullInputsCarryNoUsageEdges) {
  Graph G(0, {});
  auto *FS = G.create<FrameStateNode>(0, 0, true, 2, 1, 0);
  EXPECT_EQ(FS->numInputs(), 4u);
  EXPECT_EQ(FS->localAt(0), nullptr);
  FS->setLocalAt(0, G.intConstant(5));
  EXPECT_EQ(G.intConstant(5)->numUsages(), 1u);
  FS->setLocalAt(0, nullptr);
  EXPECT_EQ(G.intConstant(5)->numUsages(), 0u);
}

TEST(GraphTest, IntConstantsAreUnique) {
  Graph G(0, {});
  EXPECT_EQ(G.intConstant(42), G.intConstant(42));
  EXPECT_NE(G.intConstant(42), G.intConstant(43));
  EXPECT_EQ(G.nullConstant(), G.nullConstant());
}

TEST(GraphTest, DeleteNodeReleasesInputsAndCache) {
  Graph G(0, {});
  auto *C = G.intConstant(9);
  auto *A = G.create<ArithNode>(ArithKind::Add, C, C);
  unsigned Live = G.numLiveNodes();
  G.deleteNode(A);
  EXPECT_EQ(G.numLiveNodes(), Live - 1);
  EXPECT_FALSE(C->hasUsages());
  EXPECT_EQ(G.nodeAt(A->id()), nullptr);
  // Deleting a cached constant must evict it from the cache.
  G.deleteNode(C);
  auto *C2 = G.intConstant(9);
  EXPECT_NE(C2, C);
  EXPECT_EQ(C2->value(), 9);
}

TEST(GraphTest, UnlinkFixedSplicesControlFlow) {
  Graph G(0, {ValueType::Ref});
  auto *Load = G.create<LoadFieldNode>(0, 0, ValueType::Int, G.param(0));
  auto *Ret = G.create<ReturnNode>(Load);
  G.start()->setNext(Load);
  Load->setNext(Ret);
  // Loads are removable once unused.
  Load->replaceAtAllUsages(G.intConstant(0));
  G.removeFixed(Load);
  EXPECT_EQ(G.start()->next(), Ret);
  EXPECT_EQ(Ret->predecessor(), G.start());
}

TEST(GraphTest, InsertBeforePlacesNodeInChain) {
  Graph G(0, {ValueType::Ref});
  auto *Ret = G.create<ReturnNode>(nullptr);
  G.start()->setNext(Ret);
  auto *New = G.create<NewInstanceNode>(1, 2);
  G.insertBefore(New, Ret);
  EXPECT_EQ(G.start()->next(), New);
  EXPECT_EQ(New->next(), Ret);
  EXPECT_EQ(Ret->predecessor(), New);
}

TEST(DiamondTest, VerifierAcceptsWellFormedGraph) {
  DiamondGraph D;
  EXPECT_TRUE(verifyGraph(D.G).empty());
}

TEST(DiamondTest, MergeKnowsItsEndsAndPhis) {
  DiamondGraph D;
  EXPECT_EQ(D.Merge->numEnds(), 2u);
  EXPECT_EQ(D.Merge->indexOfEnd(D.End1), 0);
  EXPECT_EQ(D.Merge->indexOfEnd(D.End2), 1);
  EXPECT_EQ(D.End1->merge(), D.Merge);
  auto Phis = D.Merge->phis();
  ASSERT_EQ(Phis.size(), 1u);
  EXPECT_EQ(Phis[0], D.Phi);
  EXPECT_EQ(D.Phi->merge(), D.Merge);
  EXPECT_EQ(D.Phi->numValues(), 2u);
}

TEST(DiamondTest, PrinterMentionsAllFixedNodes) {
  DiamondGraph D;
  std::string Text = graphToString(D.G);
  EXPECT_NE(Text.find("Start"), std::string::npos);
  EXPECT_NE(Text.find("If"), std::string::npos);
  EXPECT_NE(Text.find("Merge"), std::string::npos);
  EXPECT_NE(Text.find("Phi"), std::string::npos);
  EXPECT_NE(Text.find("Return"), std::string::npos);
}

TEST(SweepTest, UnreachableBranchIsRemovedAndMergeCollapsed) {
  DiamondGraph D;
  // Cut the false branch: If no longer reaches FalseB.
  D.If->setFalseSuccessor(nullptr);
  // Replace the If with a straight line to the true branch.
  D.If->setTrueSuccessor(nullptr);
  D.G.start()->setNext(nullptr);
  D.G.start()->setNext(D.TrueB);
  D.If->setCondition(nullptr);
  EXPECT_TRUE(D.G.sweepUnreachable());
  // The merge had two ends, one went dead; it must be collapsed and the
  // phi replaced by the surviving constant 1.
  ASSERT_TRUE(D.Ret->hasValue());
  auto *C = dyn_cast<ConstantIntNode>(D.Ret->value());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->value(), 1);
  EXPECT_TRUE(verifyGraph(D.G).empty());
}

TEST(SweepTest, ReachableGraphIsUntouched) {
  DiamondGraph D;
  unsigned LiveBefore = D.G.numLiveNodes();
  EXPECT_FALSE(D.G.sweepUnreachable());
  EXPECT_EQ(D.G.numLiveNodes(), LiveBefore);
}

TEST(FrameStateTest, LayoutAccessorsMatchSections) {
  Graph G(7, {});
  auto *FS = G.create<FrameStateNode>(7, 42, false, 3, 2, 1);
  EXPECT_EQ(FS->method(), 7);
  EXPECT_EQ(FS->bci(), 42);
  EXPECT_FALSE(FS->isReexecute());
  FS->setLocalAt(2, G.intConstant(1));
  FS->setStackAt(1, G.intConstant(2));
  FS->setLockAt(0, G.nullConstant());
  EXPECT_EQ(FS->localAt(2), G.intConstant(1));
  EXPECT_EQ(FS->stackAt(1), G.intConstant(2));
  EXPECT_EQ(FS->lockAt(0), G.nullConstant());
  EXPECT_TRUE(verifyGraph(G).empty());
}

TEST(FrameStateTest, OuterStateChains) {
  Graph G(0, {});
  auto *Inner = G.create<FrameStateNode>(1, 9, true, 1, 0, 0);
  auto *Outer = G.create<FrameStateNode>(0, 5, false, 1, 0, 0);
  Inner->setOuter(Outer);
  EXPECT_EQ(Inner->outer(), Outer);
  EXPECT_EQ(Outer->outer(), nullptr);
}

TEST(FrameStateTest, VirtualMappingsAppendEntries) {
  Graph G(0, {});
  auto *FS = G.create<FrameStateNode>(0, 0, true, 1, 0, 0);
  auto *VO = G.create<VirtualObjectNode>(3, false, ValueType::Void, 2);
  FS->addVirtualMapping(VO, {G.intConstant(1), G.intConstant(2)}, 1);
  ASSERT_EQ(FS->numVirtualMappings(), 1u);
  EXPECT_EQ(FS->mappedObject(0), VO);
  EXPECT_EQ(FS->mappedEntry(0, 0), G.intConstant(1));
  EXPECT_EQ(FS->mappedEntry(0, 1), G.intConstant(2));
  EXPECT_EQ(FS->virtualMapping(0).LockDepth, 1);
  EXPECT_EQ(FS->findVirtualMapping(VO), 0);
  EXPECT_TRUE(verifyGraph(G).empty());
}

TEST(MaterializeTest, GroupCommitKeepsPerObjectEntries) {
  Graph G(0, {});
  auto *FS = G.create<FrameStateNode>(0, 0, false, 0, 0, 0);
  auto *Commit = G.create<MaterializeNode>(FS);
  auto *VA = G.create<VirtualObjectNode>(1, false, ValueType::Void, 2);
  auto *VB = G.create<VirtualObjectNode>(2, false, ValueType::Void, 1);
  unsigned IA = Commit->addObject(VA, {G.intConstant(10), VB}, 0);
  unsigned IB = Commit->addObject(VB, {VA}, 2);
  EXPECT_EQ(IA, 0u);
  EXPECT_EQ(IB, 1u);
  ASSERT_EQ(Commit->numObjects(), 2u);
  EXPECT_EQ(Commit->objectAt(0), VA);
  EXPECT_EQ(Commit->objectAt(1), VB);
  EXPECT_EQ(Commit->entryOf(0, 0), G.intConstant(10));
  EXPECT_EQ(Commit->entryOf(0, 1), VB);
  EXPECT_EQ(Commit->entryOf(1, 0), VA);
  EXPECT_EQ(Commit->lockDepthOf(1), 2);
  EXPECT_EQ(Commit->state(), FS);
}

TEST(MaterializeTest, AllocatedObjectProjectsCommit) {
  Graph G(0, {});
  auto *FS = G.create<FrameStateNode>(0, 0, false, 0, 0, 0);
  auto *Commit = G.create<MaterializeNode>(FS);
  auto *VA = G.create<VirtualObjectNode>(1, false, ValueType::Void, 0);
  Commit->addObject(VA, {}, 0);
  auto *AO = G.create<AllocatedObjectNode>(Commit, 0);
  EXPECT_EQ(AO->commit(), Commit);
  EXPECT_EQ(AO->objectIndex(), 0u);
  EXPECT_EQ(AO->type(), ValueType::Ref);
}

TEST(LoopStructureTest, LoopBeginTracksBackEdges) {
  Graph G(0, {ValueType::Int});
  auto *FwdEnd = G.create<EndNode>();
  G.start()->setNext(FwdEnd);
  auto *Loop = G.create<LoopBeginNode>();
  Loop->addEnd(FwdEnd);
  auto *Body = G.create<BeginNode>();
  auto *ExitB = G.create<BeginNode>();
  auto *If = G.create<IfNode>(G.param(0));
  Loop->setNext(If);
  If->setTrueSuccessor(Body);
  If->setFalseSuccessor(ExitB);
  auto *Back = G.create<LoopEndNode>(Loop);
  Body->setNext(Back);
  Loop->addBackEdge(Back);
  auto *Exit = G.create<LoopExitNode>(Loop);
  ExitB->setNext(Exit);
  auto *Ret = G.create<ReturnNode>(nullptr);
  Exit->setNext(Ret);

  EXPECT_EQ(Loop->forwardEnd(), FwdEnd);
  EXPECT_EQ(Loop->numBackEdges(), 1u);
  EXPECT_EQ(Loop->backEdgeAt(0), Back);
  EXPECT_EQ(Back->loopBegin(), Loop);
  EXPECT_EQ(Exit->loopBegin(), Loop);
  EXPECT_TRUE(verifyGraph(G).empty());

  std::string Text = graphToString(G);
  EXPECT_NE(Text.find("LoopBegin"), std::string::npos);
  EXPECT_NE(Text.find("LoopEnd"), std::string::npos);
  EXPECT_NE(Text.find("LoopExit"), std::string::npos);
}

TEST(VerifierTest, DetectsPhiOperandMismatch) {
  DiamondGraph D;
  D.Phi->appendValue(D.G.intConstant(3)); // Now 3 values, 2 ends.
  EXPECT_FALSE(verifyGraph(D.G).empty());
}

TEST(PrinterTest, LabelsIncludeAttributes) {
  Graph G(0, {ValueType::Int});
  EXPECT_NE(nodeLabel(G.intConstant(42)).find("ConstantInt(42)"),
            std::string::npos);
  auto *Add =
      G.create<ArithNode>(ArithKind::Add, G.param(0), G.intConstant(1));
  EXPECT_NE(nodeLabel(Add).find("Arith(+)"), std::string::npos);
  std::string Line = nodeToString(Add);
  EXPECT_NE(Line.find('['), std::string::npos);
}

} // namespace
