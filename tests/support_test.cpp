//===- support_test.cpp - Tests for the support library --------------------===//

#include "support/Casting.h"
#include "support/Debug.h"

#include <gtest/gtest.h>

namespace {

struct Shape {
  enum Kind { K_Circle, K_Square, K_Rect };
  explicit Shape(Kind K) : TheKind(K) {}
  Kind kind() const { return TheKind; }
  Kind TheKind;
};

struct Circle : Shape {
  Circle() : Shape(K_Circle) {}
  static bool classof(const Shape *S) { return S->kind() == K_Circle; }
};

struct Square : Shape {
  Square() : Shape(K_Square) {}
  static bool classof(const Shape *S) { return S->kind() == K_Square; }
};

TEST(CastingTest, IsaMatchesDynamicKind) {
  Circle C;
  Shape *S = &C;
  EXPECT_TRUE(jvm::isa<Circle>(S));
  EXPECT_FALSE(jvm::isa<Square>(S));
}

TEST(CastingTest, IsaVariadicChecksAnyOf) {
  Square Sq;
  Shape *S = &Sq;
  bool Result = jvm::isa<Circle, Square>(S);
  EXPECT_TRUE(Result);
}

TEST(CastingTest, CastReturnsTypedPointer) {
  Circle C;
  Shape *S = &C;
  EXPECT_EQ(jvm::cast<Circle>(S), &C);
}

TEST(CastingTest, DynCastReturnsNullOnMismatch) {
  Circle C;
  Shape *S = &C;
  EXPECT_EQ(jvm::dyn_cast<Square>(S), nullptr);
  EXPECT_EQ(jvm::dyn_cast<Circle>(S), &C);
}

TEST(CastingTest, DynCastOrNullHandlesNull) {
  Shape *S = nullptr;
  EXPECT_EQ(jvm::dyn_cast_or_null<Circle>(S), nullptr);
  EXPECT_FALSE(jvm::isa_and_nonnull<Circle>(S));
}

TEST(CastingTest, ConstPointersSupported) {
  const Circle C;
  const Shape *S = &C;
  EXPECT_TRUE(jvm::isa<Circle>(S));
  EXPECT_EQ(jvm::cast<Circle>(S), &C);
}

TEST(CastingTest, IsaUpcastIsStaticallyTrue) {
  Circle C;
  EXPECT_TRUE(jvm::isa<Shape>(&C));
}

TEST(DebugTest, ToggleControlsEmission) {
  bool Saved = jvm::isDebugEnabled();
  jvm::setDebugEnabled(false);
  EXPECT_FALSE(jvm::isDebugEnabled());
  jvm::setDebugEnabled(true);
  EXPECT_TRUE(jvm::isDebugEnabled());
  jvm::setDebugEnabled(Saved);
}

} // namespace
