//===- spesh_test.cpp - Speculation subsystem: guards, deopt, OSR --------------===//
//
// Covers the speculation subsystem end to end: the planner's decision
// procedure over hand-built and interpreter-fed snapshots, and the
// guard/deopt contract — hand-built guarded methods where every guard
// fails on a chosen iteration must rebuild DeoptRequests that are
// bit-for-bit identical across the graph and linear tiers and resume
// the interpreter into exactly the state the unspeculated tier
// computes. Isolate-level tests drive despecialization to convergence
// (blocklist => at most one recompile per failed speculation) and
// on-stack replacement of a hot loop. These tests carry the "spesh"
// ctest label and are part of the README TSan sweep.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"
#include "interp/Interpreter.h"
#include "spesh/SpeshPlanner.h"
#include "spesh/SpeshStats.h"
#include "vm/CompileBroker.h"
#include "vm/Isolate.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace jvm;
using namespace jvm::testprogs;

namespace {

//===----------------------------------------------------------------------===//
// Shared scaffolding
//===----------------------------------------------------------------------===//

/// Bytecode index of the \p N-th conditional branch in \p Method (0-based).
int conditionalBranchBci(const Program &P, MethodId Method, int N) {
  const MethodInfo &M = P.methodAt(Method);
  for (int Bci = 0, E = static_cast<int>(M.Code.size()); Bci != E; ++Bci)
    if (isConditionalBranch(M.Code[Bci].Op) && N-- == 0)
      return Bci;
  return -1;
}

/// Bytecode index of the first InvokeVirtual in \p Method.
int invokeVirtualBci(const Program &P, MethodId Method) {
  const MethodInfo &M = P.methodAt(Method);
  for (int Bci = 0, E = static_cast<int>(M.Code.size()); Bci != E; ++Bci)
    if (M.Code[Bci].Op == Opcode::InvokeVirtual)
      return Bci;
  return -1;
}

/// A speculation snapshot that justifies guards (Enabled, ample weight).
SpeshSnapshot enabledSnapshot() {
  SpeshSnapshot S;
  S.Enabled = true;
  S.MinProfile = 20;
  return S;
}

/// Compile-and-run harness for direct pipeline tests: compiles with or
/// without a speculation snapshot, executes the result under the graph
/// walker or the linear tier, and records every DeoptRequest (copied
/// before the interpreter consumes the frames, so tests can compare the
/// rebuilt state across tiers bit for bit).
struct SpeshJit {
  const Program &P;
  Runtime RT;
  ProfileData Prof;
  Interpreter Interp;
  CompilerOptions Opts;
  std::vector<DeoptRequest> Requests;

  explicit SpeshJit(const Program &P)
      : P(P), RT(P), Prof(P.numMethods()), Interp(RT, Prof) {
    Opts.EnableSpesh = true;
  }

  CompileResult compile(MethodId M, const SpeshSnapshot *Snap) {
    return runCompilePipeline(P, M, ProfileSnapshot(Prof, P, M), Opts,
                              /*IsolateId=*/0, Snap);
  }

  CallHandler callHandler() {
    return [this](MethodId Target, std::vector<Value> &&Args) {
      return Interp.call(Target, std::move(Args));
    };
  }

  DeoptHandlerFn deoptHandler() {
    return [this](DeoptRequest &&Req) {
      Requests.push_back(Req); // copy first: the resume moves the frames
      return Interp.resume(std::move(Req.Frames));
    };
  }

  Value runGraph(const Graph &G, std::vector<Value> Args) {
    GraphExecutor Ex(RT, callHandler(), deoptHandler());
    Runtime::RootScope Roots(RT, &Args);
    return Ex.execute(G, Args);
  }

  Value runLinear(const LinearCode &L, std::vector<Value> Args) {
    LinearExecutor Ex(RT, callHandler(), deoptHandler());
    Runtime::RootScope Roots(RT, &Args);
    return Ex.execute(L, Args);
  }
};

/// The bit-for-bit DeoptRequest comparison: same attribution, same
/// rebuilt frames, same values in every local and stack slot.
void expectSameRequest(const DeoptRequest &A, const DeoptRequest &B,
                       const char *What) {
  EXPECT_EQ(A.Root, B.Root) << What;
  EXPECT_EQ(A.Reason, B.Reason) << What;
  EXPECT_EQ(A.GuardId, B.GuardId) << What;
  EXPECT_EQ(A.Rematerialized, B.Rematerialized) << What;
  ASSERT_EQ(A.Frames.size(), B.Frames.size()) << What;
  for (size_t F = 0; F != A.Frames.size(); ++F) {
    const ResumeFrame &FA = A.Frames[F];
    const ResumeFrame &FB = B.Frames[F];
    EXPECT_EQ(FA.Method, FB.Method) << What << " frame " << F;
    EXPECT_EQ(FA.Bci, FB.Bci) << What << " frame " << F;
    EXPECT_EQ(FA.Reexecute, FB.Reexecute) << What << " frame " << F;
    ASSERT_EQ(FA.Locals.size(), FB.Locals.size()) << What << " frame " << F;
    for (size_t I = 0; I != FA.Locals.size(); ++I)
      EXPECT_EQ(FA.Locals[I], FB.Locals[I])
          << What << " frame " << F << " local " << I;
    ASSERT_EQ(FA.Stack.size(), FB.Stack.size()) << What << " frame " << F;
    for (size_t I = 0; I != FA.Stack.size(); ++I)
      EXPECT_EQ(FA.Stack[I], FB.Stack[I])
          << What << " frame " << F << " stack " << I;
  }
}

/// f(n, k): acc = 0; for (i = 0; i < n; ++i) acc += (i == k ? 100 : 1).
/// The inner branch is the speculation target: trained "i != k always",
/// it fails on exactly iteration k — the guard must rebuild the mid-loop
/// frame (acc and i at iteration k) for the interpreter to finish.
struct LoopBranchProgram {
  Program P;
  MethodId F = NoMethod;
  int InnerBranchBci = -1;
};

LoopBranchProgram makeLoopBranchProgram() {
  LoopBranchProgram R;
  Program &P = R.P;
  R.F = P.addMethod("loopBranch", NoClass, {ValueType::Int, ValueType::Int},
                    ValueType::Int);
  CodeBuilder C(P, R.F);
  unsigned Acc = C.newLocal();
  unsigned I = C.newLocal();
  Label Head = C.newLabel();
  Label Plain = C.newLabel();
  Label Next = C.newLabel();
  Label Exit = C.newLabel();
  C.constI(0).store(Acc);
  C.constI(0).store(I);
  C.bind(Head);
  C.load(I).load(0).ifGe(Exit);
  C.load(I).load(1).ifNe(Plain);
  C.load(Acc).constI(100).add().store(Acc);
  C.gotoL(Next);
  C.bind(Plain);
  C.load(Acc).constI(1).add().store(Acc);
  C.bind(Next);
  C.load(I).constI(1).add().store(I);
  C.gotoL(Head);
  C.bind(Exit);
  C.load(Acc).retInt();
  C.finish();
  verifyProgramOrDie(P);
  // First conditional branch is the loop exit, second is i == k.
  R.InnerBranchBci = conditionalBranchBci(P, R.F, 1);
  return R;
}

//===----------------------------------------------------------------------===//
// Planner decision procedure
//===----------------------------------------------------------------------===//

TEST(SpeshPlannerTest, MonomorphicReceiverIsPinnedPolymorphicIsNot) {
  ShapesProgram SP = makeShapesProgram();
  int Bci = invokeVirtualBci(SP.P, SP.AreaOf);
  ASSERT_GE(Bci, 0);

  SpeshSnapshot S = enabledSnapshot();
  S.Receivers[Bci][SP.Circle] = 50;
  SpeshPlan Plan = planSpeculations(S, SP.P, SP.AreaOf);
  ASSERT_EQ(Plan.size(), 1u);
  EXPECT_EQ(Plan.Specs[0].Kind, SpeculationKind::ReceiverPin);
  EXPECT_EQ(Plan.Specs[0].Bci, Bci);
  EXPECT_EQ(Plan.Specs[0].Receiver, SP.Circle);

  S.Receivers[Bci][SP.Square] = 1; // one stray observation kills the pin
  EXPECT_TRUE(planSpeculations(S, SP.P, SP.AreaOf).empty());
}

TEST(SpeshPlannerTest, ThinProfilesAndBlocklistedSitesAreSkipped) {
  ShapesProgram SP = makeShapesProgram();
  int Bci = invokeVirtualBci(SP.P, SP.AreaOf);

  SpeshSnapshot S = enabledSnapshot();
  S.Receivers[Bci][SP.Circle] = S.MinProfile - 1; // immature
  EXPECT_TRUE(planSpeculations(S, SP.P, SP.AreaOf).empty());

  S.Receivers[Bci][SP.Circle] = 50;
  ASSERT_EQ(planSpeculations(S, SP.P, SP.AreaOf).size(), 1u);

  // A blocklisted site never comes back, whatever the histogram says.
  Speculation Pin;
  Pin.Kind = SpeculationKind::ReceiverPin;
  Pin.Bci = Bci;
  S.Blocklist.insert(speculationSiteKey(Pin));
  EXPECT_TRUE(planSpeculations(S, SP.P, SP.AreaOf).empty());

  // Disabled or OSR snapshots always produce the empty plan.
  S.Blocklist.clear();
  S.Enabled = false;
  EXPECT_TRUE(planSpeculations(S, SP.P, SP.AreaOf).empty());
  S.Enabled = true;
  S.IsOsr = true;
  EXPECT_TRUE(planSpeculations(S, SP.P, SP.AreaOf).empty());
}

TEST(SpeshPlannerTest, StableIntArgumentsAndOneSidedBranches) {
  MathProgram MP = makeMathProgram();
  SpeshSnapshot S = enabledSnapshot();
  S.Args[0] = {/*Count=*/40, /*Stable=*/true, /*Value=*/7};
  int BranchBci = conditionalBranchBci(MP.P, MP.SumTo, 0);
  ASSERT_GE(BranchBci, 0);
  S.Branches[BranchBci] = {0, 64}; // exit branch never taken in profile

  SpeshPlan Plan = planSpeculations(S, MP.P, MP.SumTo);
  ASSERT_EQ(Plan.size(), 2u);
  // Entry guards precede branch guards, so guard ids are stable.
  EXPECT_EQ(Plan.Specs[0].Kind, SpeculationKind::ArgConst);
  EXPECT_EQ(Plan.Specs[0].Index, 0);
  EXPECT_EQ(Plan.Specs[0].IntValue, 7);
  EXPECT_EQ(Plan.Specs[1].Kind, SpeculationKind::BranchPrune);
  EXPECT_EQ(Plan.Specs[1].Bci, BranchBci);
  EXPECT_FALSE(Plan.Specs[1].TakenIsHot);

  // Divergent observations disqualify the argument.
  S.Args[0].Stable = false;
  EXPECT_EQ(planSpeculations(S, MP.P, MP.SumTo).size(), 1u);
  // Branches seen going both ways are not one-sided.
  S.Branches[BranchBci] = {3, 61};
  EXPECT_TRUE(planSpeculations(S, MP.P, MP.SumTo).empty());
}

TEST(SpeshStatsTest, InterpreterProfilesFoldIntoPlannableSnapshots) {
  // The real data flow: interpret areaOf on circles only, fold the
  // method profile into the durable stats, snapshot, plan.
  ShapesProgram SP = makeShapesProgram();
  Runtime RT(SP.P);
  ProfileData Prof(SP.P.numMethods());
  Interpreter Interp(RT, Prof);
  for (int I = 0; I != 30; ++I) {
    Value Circle = Interp.call(SP.MakeCircle, {Value::makeInt(I + 1)});
    EXPECT_EQ(Interp.call(SP.AreaOf, {Circle}).asInt(),
              3 * (I + 1) * (I + 1));
  }

  SpeshStats Stats(SP.P.numMethods());
  Stats.foldProfile(SP.AreaOf, Prof.of(SP.AreaOf));
  SpeshSnapshot S = Stats.snapshot(SP.AreaOf);
  S.Enabled = true;
  S.MinProfile = 20;
  SpeshPlan Plan = planSpeculations(S, SP.P, SP.AreaOf);
  ASSERT_EQ(Plan.size(), 1u);
  EXPECT_EQ(Plan.Specs[0].Kind, SpeculationKind::ReceiverPin);
  EXPECT_EQ(Plan.Specs[0].Receiver, SP.Circle);
}

//===----------------------------------------------------------------------===//
// Guard failure => DeoptRequests identical to the unspeculated tier
//===----------------------------------------------------------------------===//

TEST(SpeshGuardTest, ArgConstEntryGuardFailureResumesExactly) {
  MathProgram MP = makeMathProgram();
  SpeshJit J(MP.P);

  SpeshSnapshot S = enabledSnapshot();
  S.Args[0] = {/*Count=*/50, /*Stable=*/true, /*Value=*/10};
  CompileResult Spec = J.compile(MP.SumTo, &S);
  ASSERT_NE(Spec.G, nullptr);
  ASSERT_NE(Spec.Code, nullptr);
  ASSERT_EQ(Spec.Spesh.size(), 1u);
  CompileResult Plain = J.compile(MP.SumTo, nullptr);
  ASSERT_TRUE(Plain.Spesh.empty());

  // On the speculated value both versions agree without deopting.
  EXPECT_EQ(J.runGraph(*Spec.G, {Value::makeInt(10)}).asInt(), 55);
  EXPECT_EQ(J.runLinear(*Spec.Code, {Value::makeInt(10)}).asInt(), 55);
  EXPECT_TRUE(J.Requests.empty());

  // Off the speculated value, the entry guard fails in both tiers; the
  // rebuilt entry frame re-executes from bci 0 with the REAL argument
  // (not the speculated constant) and must reach the unspeculated
  // tier's result bit for bit.
  Value Expected = J.runLinear(*Plain.Code, {Value::makeInt(11)});
  EXPECT_TRUE(J.Requests.empty()) << "unspeculated code must not deopt";
  EXPECT_EQ(Expected.asInt(), 66);

  EXPECT_EQ(J.runGraph(*Spec.G, {Value::makeInt(11)}), Expected);
  EXPECT_EQ(J.runLinear(*Spec.Code, {Value::makeInt(11)}), Expected);
  ASSERT_EQ(J.Requests.size(), 2u);
  for (const DeoptRequest &Req : J.Requests) {
    EXPECT_EQ(Req.Root, MP.SumTo);
    EXPECT_EQ(Req.Reason, DeoptReason::ValueGuardFailed);
    EXPECT_EQ(Req.GuardId, 0u);
    ASSERT_EQ(Req.Frames.size(), 1u);
    EXPECT_EQ(Req.Frames[0].Bci, 0);
    EXPECT_TRUE(Req.Frames[0].Reexecute);
    EXPECT_EQ(Req.Frames[0].Locals[0], Value::makeInt(11));
  }
  expectSameRequest(J.Requests[0], J.Requests[1], "graph vs linear");
}

TEST(SpeshGuardTest, BranchPruneGuardFailsOnChosenIterationOnly) {
  LoopBranchProgram LP = makeLoopBranchProgram();
  ASSERT_GE(LP.InnerBranchBci, 0);
  SpeshJit J(LP.P);

  // Train "i != k" as always taken, so the acc += 100 path is pruned.
  SpeshSnapshot S = enabledSnapshot();
  S.Branches[LP.InnerBranchBci] = {/*Taken=*/500, /*NotTaken=*/0};
  CompileResult Spec = J.compile(LP.F, &S);
  ASSERT_EQ(Spec.Spesh.size(), 1u);
  EXPECT_EQ(Spec.Spesh.Specs[0].Kind, SpeculationKind::BranchPrune);
  CompileResult Plain = J.compile(LP.F, nullptr);

  // k outside the loop: the speculation holds, no deopt, f(8, 99) = 8.
  EXPECT_EQ(J.runLinear(*Spec.Code, {Value::makeInt(8), Value::makeInt(99)})
                .asInt(),
            8);
  EXPECT_TRUE(J.Requests.empty());

  // k = 5 inside the loop: the guard fails on exactly iteration 5, with
  // acc mid-accumulation. The rebuilt frame must carry acc = 5, i = 5 at
  // the branch bci so the interpreter finishes to the unspeculated
  // result f(8, 5) = 7 * 1 + 100 = 107.
  Value Expected =
      J.runLinear(*Plain.Code, {Value::makeInt(8), Value::makeInt(5)});
  EXPECT_TRUE(J.Requests.empty());
  EXPECT_EQ(Expected.asInt(), 107);

  EXPECT_EQ(J.runGraph(*Spec.G, {Value::makeInt(8), Value::makeInt(5)}),
            Expected);
  EXPECT_EQ(J.runLinear(*Spec.Code, {Value::makeInt(8), Value::makeInt(5)}),
            Expected);
  ASSERT_EQ(J.Requests.size(), 2u);
  for (const DeoptRequest &Req : J.Requests) {
    EXPECT_EQ(Req.Root, LP.F);
    EXPECT_EQ(Req.Reason, DeoptReason::BranchNeverTaken);
    EXPECT_EQ(Req.GuardId, 0u);
    ASSERT_EQ(Req.Frames.size(), 1u);
    EXPECT_EQ(Req.Frames[0].Bci, LP.InnerBranchBci);
    EXPECT_TRUE(Req.Frames[0].Reexecute);
    ASSERT_EQ(Req.Frames[0].Locals.size(), 4u);
    EXPECT_EQ(Req.Frames[0].Locals[2], Value::makeInt(5)); // acc
    EXPECT_EQ(Req.Frames[0].Locals[3], Value::makeInt(5)); // i
  }
  expectSameRequest(J.Requests[0], J.Requests[1], "graph vs linear");
}

TEST(SpeshGuardTest, ReceiverPinGuardFailureDispatchesCorrectly) {
  ShapesProgram SP = makeShapesProgram();
  int Bci = invokeVirtualBci(SP.P, SP.AreaOf);
  SpeshJit J(SP.P);

  SpeshSnapshot S = enabledSnapshot();
  S.Receivers[Bci][SP.Circle] = 50;
  CompileResult Spec = J.compile(SP.AreaOf, &S);
  ASSERT_EQ(Spec.Spesh.size(), 1u);
  EXPECT_EQ(Spec.Spesh.Specs[0].Kind, SpeculationKind::ReceiverPin);
  CompileResult Plain = J.compile(SP.AreaOf, nullptr);

  // Pinned class: straight to Circle.area, no deopt.
  Value Circle = J.Interp.call(SP.MakeCircle, {Value::makeInt(4)});
  EXPECT_EQ(J.runLinear(*Spec.Code, {Circle}).asInt(), 48);
  EXPECT_TRUE(J.Requests.empty());

  // A Square fails the exact-type guard in both tiers; the re-executed
  // invoke dispatches to Square.area and matches the unspeculated tier.
  Value Square = J.Interp.call(SP.MakeSquare, {Value::makeInt(6)});
  Value Expected = J.runLinear(*Plain.Code, {Square});
  EXPECT_TRUE(J.Requests.empty());
  EXPECT_EQ(Expected.asInt(), 36);

  EXPECT_EQ(J.runGraph(*Spec.G, {Square}), Expected);
  EXPECT_EQ(J.runLinear(*Spec.Code, {Square}), Expected);
  ASSERT_EQ(J.Requests.size(), 2u);
  for (const DeoptRequest &Req : J.Requests) {
    EXPECT_EQ(Req.Root, SP.AreaOf);
    EXPECT_EQ(Req.Reason, DeoptReason::TypeGuardFailed);
    EXPECT_EQ(Req.GuardId, 0u);
    ASSERT_EQ(Req.Frames.size(), 1u);
    EXPECT_EQ(Req.Frames[0].Bci, Bci);
    EXPECT_TRUE(Req.Frames[0].Reexecute);
  }
  expectSameRequest(J.Requests[0], J.Requests[1], "graph vs linear");
}

//===----------------------------------------------------------------------===//
// Isolate level: despecialization convergence and OSR
//===----------------------------------------------------------------------===//

VMOptions speshOptions() {
  VMOptions O;
  O.CompileThreshold = 10;
  O.CompilerThreads = 0; // synchronous compiles
  O.Compiler.EnableSpesh = true;
  O.Compiler.SpeshMinProfile = 5;
  O.SpeshFailThreshold = 2;
  O.OsrThreshold = 0; // loop replacement off unless the test wants it
  return O;
}

TEST(SpeshIsolateTest, DespecializationConvergesAfterOneRecompile) {
  ShapesProgram SP = makeShapesProgram();
  Isolate I(SP.P, speshOptions());

  // Warm with circles until areaOf compiles with a receiver pin. The
  // radius varies so the only stable speculation anywhere is the pin —
  // constant helper arguments would earn their own ArgConst plans and
  // muddy the counters this test asserts on.
  for (int R = 0; R != 15; ++R) {
    int Radius = R % 5 + 1;
    Value Circle = I.call(SP.MakeCircle, {Value::makeInt(Radius)});
    EXPECT_EQ(I.call(SP.AreaOf, {Circle}).asInt(), 3 * Radius * Radius);
  }
  EXPECT_GE(I.speshMetrics().Plans, 1u);
  EXPECT_GE(I.speshMetrics().GuardsPlanted, 1u);
  EXPECT_EQ(I.speshMetrics().GuardFailures, 0u);

  // Squares violate the pin: every failure must still produce the right
  // answer, and crossing SpeshFailThreshold blocklists the site and
  // invalidates the code — exactly once.
  for (int R = 0; R != 40; ++R) {
    int Side = R % 6 + 1;
    Value Square = I.call(SP.MakeSquare, {Value::makeInt(Side)});
    EXPECT_EQ(I.call(SP.AreaOf, {Square}).asInt(), Side * Side)
        << "round " << R;
  }
  EXPECT_EQ(I.speshMetrics().GuardFailures, 2u);
  EXPECT_EQ(I.speshMetrics().Despecializations, 1u);
  EXPECT_TRUE(I.speshStats().wasDespecialized(SP.AreaOf));

  // The durable blocklist keeps the planner from re-proposing the pin:
  // the recompiled method runs both classes guard-free.
  for (int R = 0; R != 40; ++R) {
    int N = R % 7 + 1;
    Value Circle = I.call(SP.MakeCircle, {Value::makeInt(N)});
    EXPECT_EQ(I.call(SP.AreaOf, {Circle}).asInt(), 3 * N * N);
    Value Square = I.call(SP.MakeSquare, {Value::makeInt(N)});
    EXPECT_EQ(I.call(SP.AreaOf, {Square}).asInt(), N * N);
  }
  EXPECT_EQ(I.speshMetrics().GuardFailures, 2u);
  EXPECT_EQ(I.speshMetrics().Despecializations, 1u);
}

TEST(SpeshIsolateTest, OsrEntersHotLoopMidFlight) {
  MathProgram MP = makeMathProgram();
  VMOptions O = speshOptions();
  O.OsrThreshold = 50;
  O.CompileThreshold = 1000000; // whole-method compilation never fires
  Isolate I(MP.P, O);

  // A single long-running call: only on-stack replacement can move this
  // activation to compiled code, and the result must be exact.
  EXPECT_EQ(I.call(MP.SumTo, {Value::makeInt(5000)}).asInt(), 12502500);
  EXPECT_GE(I.speshMetrics().OsrCompiles, 1u);
  EXPECT_GE(I.speshMetrics().OsrEntries, 1u);

  // OSR code is reused: the next long call enters without recompiling.
  uint64_t Compiles = I.speshMetrics().OsrCompiles;
  EXPECT_EQ(I.call(MP.SumTo, {Value::makeInt(6000)}).asInt(), 18003000);
  EXPECT_EQ(I.speshMetrics().OsrCompiles, Compiles);
  EXPECT_GE(I.speshMetrics().OsrEntries, 2u);
}

TEST(SpeshIsolateTest, OsrThresholdZeroDisablesReplacement) {
  MathProgram MP = makeMathProgram();
  VMOptions O = speshOptions();
  O.CompileThreshold = 1000000;
  Isolate I(MP.P, O); // OsrThreshold = 0 from speshOptions()
  EXPECT_EQ(I.call(MP.SumTo, {Value::makeInt(5000)}).asInt(), 12502500);
  EXPECT_EQ(I.speshMetrics().OsrCompiles, 0u);
  EXPECT_EQ(I.speshMetrics().OsrEntries, 0u);
}

//===----------------------------------------------------------------------===//
// Environment knob parsing
//===----------------------------------------------------------------------===//

TEST(SpeshEnvTest, ValidSettingsParse) {
  EXPECT_FALSE(speshFromEnvironment(nullptr));
  EXPECT_FALSE(speshFromEnvironment(""));
  EXPECT_FALSE(speshFromEnvironment("0"));
  EXPECT_TRUE(speshFromEnvironment("1"));

  EXPECT_EQ(speshCountFromEnvironment("JVM_SPESH_THRESHOLD", nullptr, 2,
                                      /*ZeroAllowed=*/false),
            2u);
  EXPECT_EQ(speshCountFromEnvironment("JVM_SPESH_THRESHOLD", "7", 2, false),
            7u);
  EXPECT_EQ(speshCountFromEnvironment("JVM_OSR_THRESHOLD", "0", 2000,
                                      /*ZeroAllowed=*/true),
            0u);
}

TEST(SpeshEnvDeathTest, UnknownSettingsAreFatal) {
  // A bench run silently comparing "speculation on" against a typo
  // would produce numbers for the wrong configuration, so anything
  // unrecognized must die naming the valid settings.
  EXPECT_DEATH(speshFromEnvironment("yes"),
               "unknown JVM_SPESH 'yes'.*0, 1");
  EXPECT_DEATH(speshCountFromEnvironment("JVM_SPESH_THRESHOLD", "fast", 2,
                                         /*ZeroAllowed=*/false),
               "invalid JVM_SPESH_THRESHOLD 'fast'.*positive integer");
  EXPECT_DEATH(speshCountFromEnvironment("JVM_SPESH_THRESHOLD", "0", 2,
                                         /*ZeroAllowed=*/false),
               "invalid JVM_SPESH_THRESHOLD '0'.*positive integer");
  EXPECT_DEATH(speshCountFromEnvironment("JVM_OSR_THRESHOLD", "12x", 2000,
                                         /*ZeroAllowed=*/true),
               "invalid JVM_OSR_THRESHOLD '12x'.*non-negative integer");
}

} // namespace
