//===- profiler_test.cpp - Sampling profiler across the four tiers -------------===//
//
// Covers the sampling profiler end to end: zero cost and zero samples
// while disabled, tick attribution to the right (isolate, tier, method)
// under every JVM_EXEC_MODE including the three-way differential,
// allocation-site sampling determinism under a fixed seed, folded-stack
// rendering, the prof.* metric gauges, and signal-safety of the SIGPROF
// handler while GC stress / the parallel scavenger move the heap under
// it. The profiler is process-global state, so every test starts from a
// stopped, cleared profiler and leaves it that way.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "jit/NativeCode.h"
#include "observability/Profiler.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

using namespace jvm;
using namespace jvm::testprogs;

namespace {

#define SKIP_WITHOUT_NATIVE()                                                  \
  do {                                                                         \
    if (!nativeBackendSupported())                                             \
      GTEST_SKIP() << "native backend not built for this host";                \
  } while (0)

/// Every test runs against the process-global profiler: start stopped
/// and cleared with the default configuration, leave it that way.
class ProfilerTest : public ::testing::Test {
protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    Profiler &P = Profiler::get();
    P.stop();
    P.clear();
    P.setRateHz(1000);
    P.setAllocPeriodBytes(0);
    P.setSeed(0x5EED);
  }
};

VMOptions optionsFor(ExecMode Mode) {
  VMOptions O;
  O.CompileThreshold = 5;
  O.Compiler.EAMode = EscapeAnalysisMode::Partial;
  // Synchronous compilation: the method is on its compiled tier the
  // moment the threshold crosses, so the sampling loop below spends its
  // time in the tier under test rather than racing a broker worker.
  O.CompilerThreads = 0;
  O.Exec = Mode;
  return O;
}

/// Burns CPU in \p VM until the profiler has at least one tick for
/// \p Iso on \p Tier or the deadline passes. ITIMER_PROF counts CPU
/// time, so a bounded busy workload is guaranteed to be interrupted.
bool sampleUntil(VirtualMachine &VM, MethodId M, uint32_t Iso, ProfTier Tier,
                 std::chrono::seconds Deadline = std::chrono::seconds(20)) {
  auto Until = std::chrono::steady_clock::now() + Deadline;
  while (std::chrono::steady_clock::now() < Until) {
    for (int I = 0; I != 50; ++I)
      VM.call(M, {Value::makeInt(20000)});
    if (Profiler::get().samplesForIsolate(Iso, Tier) > 0)
      return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Disabled path
//===----------------------------------------------------------------------===//

TEST_F(ProfilerTest, DisabledRecordsNothing) {
  ASSERT_FALSE(profWantsSamples());
  ASSERT_FALSE(profWantsAllocSamples());
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, optionsFor(ExecMode::Linear));
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(VM.call(MP.SumTo, {Value::makeInt(100)}).asInt(), 5050);
  VM.waitForCompilerIdle();
  EXPECT_EQ(Profiler::get().totalSamples(), 0u);
  EXPECT_EQ(Profiler::get().allocSamplesForIsolate(VM.isolate().id()), 0u);
  EXPECT_TRUE(Profiler::get().renderFolded().empty());
}

TEST_F(ProfilerTest, ScopeEnteredDisabledIgnoresLateEnable) {
  // A ProfScope constructed while the profiler is off never touches the
  // shadow stack, even if the profiler starts before it is destroyed.
  {
    ProfScope Outer(ProfTierGraph, 7);
    Profiler::get().setRateHz(0); // gates only, no timer
    Profiler::get().start();
    Outer.setBci(3); // must be a no-op, not a write through null state
    ProfScope Inner(ProfTierLinear, 8);
  }
  Profiler::get().stop();
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Tick attribution per exec mode
//===----------------------------------------------------------------------===//

TEST_F(ProfilerTest, AttributesInterpreterTier) {
  MathProgram MP = makeMathProgram();
  VMOptions O = optionsFor(ExecMode::Linear);
  O.EnableJit = false; // interpreter-only: every tick must land on tier 0
  VirtualMachine VM(MP.P, O);
  Profiler::get().setRateHz(2000);
  Profiler::get().start();
  ASSERT_TRUE(sampleUntil(VM, MP.SumTo, VM.isolate().id(), ProfTierInterp));
  Profiler::get().stop();
  uint32_t Iso = VM.isolate().id();
  EXPECT_GT(Profiler::get().samplesForIsolate(Iso, ProfTierInterp), 0u);
  EXPECT_EQ(Profiler::get().samplesForIsolate(Iso, ProfTierGraph), 0u);
  EXPECT_EQ(Profiler::get().samplesForIsolate(Iso, ProfTierLinear), 0u);
  EXPECT_EQ(Profiler::get().samplesForIsolate(Iso, ProfTierNative), 0u);

  // The hot leaf is sumTo itself.
  std::vector<Profiler::MethodSamples> Top = Profiler::get().topMethods(Iso, 4);
  ASSERT_FALSE(Top.empty());
  EXPECT_EQ(Top[0].Method, int32_t(MP.SumTo));
  EXPECT_EQ(Profiler::get().methodName(Iso, Top[0].Method), "sumTo");
}

TEST_F(ProfilerTest, AttributesGraphTier) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, optionsFor(ExecMode::Graph));
  Profiler::get().setRateHz(2000);
  Profiler::get().start();
  ASSERT_TRUE(sampleUntil(VM, MP.SumTo, VM.isolate().id(), ProfTierGraph));
  Profiler::get().stop();
  EXPECT_GT(
      Profiler::get().samplesForIsolate(VM.isolate().id(), ProfTierGraph), 0u);
}

TEST_F(ProfilerTest, AttributesLinearTier) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, optionsFor(ExecMode::Linear));
  Profiler::get().setRateHz(2000);
  Profiler::get().start();
  ASSERT_TRUE(sampleUntil(VM, MP.SumTo, VM.isolate().id(), ProfTierLinear));
  Profiler::get().stop();
  EXPECT_GT(
      Profiler::get().samplesForIsolate(VM.isolate().id(), ProfTierLinear),
      0u);
}

TEST_F(ProfilerTest, AttributesNativeTier) {
  SKIP_WITHOUT_NATIVE();
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, optionsFor(ExecMode::Native));
  Profiler::get().setRateHz(2000);
  Profiler::get().start();
  ASSERT_TRUE(sampleUntil(VM, MP.SumTo, VM.isolate().id(), ProfTierNative));
  Profiler::get().stop();
  uint32_t Iso = VM.isolate().id();
  EXPECT_GT(Profiler::get().samplesForIsolate(Iso, ProfTierNative), 0u);
  // Every native tick either resolved its PC through the CodeCache index
  // (tick inside machine code) or kept the shadow frame's attribution
  // (tick inside a C++ helper); none may be fully unattributed.
  EXPECT_EQ(Profiler::get().unattributedSamples(), 0u);
}

TEST_F(ProfilerTest, DifferentialModeSamplesCompiledTiers) {
  MathProgram MP = makeMathProgram();
  VirtualMachine VM(MP.P, optionsFor(ExecMode::Differential));
  Profiler::get().setRateHz(2000);
  Profiler::get().start();
  // The differential driver re-runs effect-free compiled calls under
  // every available tier, so ticks land across the compiled tiers; wait
  // until the total for this isolate is nonzero, then check the split.
  uint32_t Iso = VM.isolate().id();
  auto Until = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  uint64_t Compiled = 0;
  while (std::chrono::steady_clock::now() < Until && !Compiled) {
    for (int I = 0; I != 50; ++I)
      VM.call(MP.SumTo, {Value::makeInt(20000)});
    Compiled = Profiler::get().samplesForIsolate(Iso, ProfTierGraph) +
               Profiler::get().samplesForIsolate(Iso, ProfTierLinear) +
               Profiler::get().samplesForIsolate(Iso, ProfTierNative);
  }
  Profiler::get().stop();
  EXPECT_GT(Compiled, 0u)
      << "no compiled-tier ticks under differential mode";
}

//===----------------------------------------------------------------------===//
// Allocation-site sampling
//===----------------------------------------------------------------------===//

/// Runs the Box-churn workload under allocation sampling with \p Seed
/// and returns the site table for the isolate. Interpreter-only and
/// single-threaded, so the allocation sequence is bit-for-bit identical
/// across runs.
std::vector<Profiler::AllocSite> churnSites(uint64_t Seed) {
  ChurnProgram CP = makeChurnProgram();
  VMOptions O = optionsFor(ExecMode::Linear);
  O.EnableJit = false;
  VirtualMachine VM(CP.P, O);
  Profiler &P = Profiler::get();
  P.setRateHz(0); // no timer: only the deterministic alloc stream
  P.setAllocPeriodBytes(512);
  P.setSeed(Seed);
  P.start();
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(VM.call(CP.SumBoxes, {Value::makeInt(500)}).asInt(),
              500 * 499 / 2);
  P.stop();
  return P.allocSites(VM.isolate().id());
}

TEST_F(ProfilerTest, AllocSamplingIsDeterministicUnderFixedSeed) {
  std::vector<Profiler::AllocSite> A = churnSites(1234);
  ASSERT_FALSE(A.empty());
  reset();
  std::vector<Profiler::AllocSite> B = churnSites(1234);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Method, B[I].Method);
    EXPECT_EQ(A[I].Bci, B[I].Bci);
    EXPECT_EQ(A[I].Class, B[I].Class);
    EXPECT_EQ(A[I].Count, B[I].Count);
    EXPECT_EQ(A[I].Bytes, B[I].Bytes);
    EXPECT_EQ(A[I].SizeSum, B[I].SizeSum);
  }

  reset();
  // A different seed jitters the budgets differently: same sites, but
  // (with overwhelming probability over ~200 samples) different counts.
  std::vector<Profiler::AllocSite> C = churnSites(99991);
  ASSERT_FALSE(C.empty());
  bool AnyDifferent = C.size() != A.size();
  for (size_t I = 0; !AnyDifferent && I != A.size(); ++I)
    AnyDifferent = A[I].Count != C[I].Count;
  EXPECT_TRUE(AnyDifferent) << "seed does not influence the sample stream";
}

TEST_F(ProfilerTest, AllocSamplesCarrySiteAndWeight) {
  std::vector<Profiler::AllocSite> Sites = churnSites(7);
  ASSERT_FALSE(Sites.empty());
  uint64_t TotalWeight = 0;
  for (const Profiler::AllocSite &S : Sites) {
    EXPECT_GE(S.Method, 0);
    EXPECT_GE(S.Bci, 0) << "interpreter alloc sample without a bci";
    EXPECT_GT(S.Count, 0u);
    EXPECT_GT(S.SizeSum, 0u);
    EXPECT_EQ(S.Bytes, S.Count * 512) << "weight must equal count * period";
    TotalWeight += S.Bytes;
  }
  // 20 * 500 Boxes at a 512-byte period: the weighted estimate must be
  // the right order of magnitude for the ~10k objects actually made.
  EXPECT_GT(TotalWeight, 0u);
}

//===----------------------------------------------------------------------===//
// Folded output and metrics surface
//===----------------------------------------------------------------------===//

TEST_F(ProfilerTest, FoldedOutputNamesIsolateAndTier) {
  MathProgram MP = makeMathProgram();
  VMOptions O = optionsFor(ExecMode::Linear);
  O.EnableJit = false;
  VirtualMachine VM(MP.P, O);
  Profiler::get().setRateHz(2000);
  Profiler::get().start();
  ASSERT_TRUE(sampleUntil(VM, MP.SumTo, VM.isolate().id(), ProfTierInterp));
  Profiler::get().stop();

  std::string Folded = Profiler::get().renderFolded();
  std::string Prefix = "isolate-" + std::to_string(VM.isolate().id()) + ";";
  ASSERT_NE(Folded.find(Prefix), std::string::npos) << Folded;
  EXPECT_NE(Folded.find("sumTo_[i]"), std::string::npos) << Folded;
  // Every line is "stack count\n" with a positive trailing integer.
  size_t Pos = 0;
  while (Pos < Folded.size()) {
    size_t Eol = Folded.find('\n', Pos);
    ASSERT_NE(Eol, std::string::npos);
    std::string Line = Folded.substr(Pos, Eol - Pos);
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    EXPECT_GT(std::stoull(Line.substr(Space + 1)), 0u) << Line;
    Pos = Eol + 1;
  }
}

TEST_F(ProfilerTest, MetricsGaugesExposeProfilerCounters) {
  MathProgram MP = makeMathProgram();
  VMOptions O = optionsFor(ExecMode::Linear);
  O.EnableJit = false;
  VirtualMachine VM(MP.P, O);
  MetricsRegistry &R = VM.metricsRegistry();
  for (const char *Name :
       {"prof.samples", "prof.samples_interp", "prof.samples_graph",
        "prof.samples_linear", "prof.samples_native", "prof.samples_runtime",
        "prof.alloc_samples", "prof.dropped_samples", "prof.ring_high_water",
        "prof.ring_capacity", "prof.other_thread_samples",
        "prof.native_pc_resolved", "prof.native_pc_miss",
        "prof.truncated_frames", "prof.unattributed"})
    EXPECT_TRUE(R.has(Name)) << Name;

  Profiler::get().setRateHz(2000);
  Profiler::get().start();
  ASSERT_TRUE(sampleUntil(VM, MP.SumTo, VM.isolate().id(), ProfTierInterp));
  Profiler::get().stop();
  std::string Text = VM.dumpMetricsText();
  EXPECT_NE(Text.find("prof.samples_interp"), std::string::npos);
  // The top-methods provider emits per-method rows once samples exist.
  EXPECT_NE(Text.find("prof.top.sumTo.samples"), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// Signal-safety under GC pressure
//===----------------------------------------------------------------------===//

/// Churn allocations in \p VM for \p Duration while the SIGPROF handler
/// fires at a high rate. Any handler/mutator race (half-written shadow
/// frames, ring corruption, a tick inside TLAB refill or scavenge)
/// surfaces as a crash or a checksum mismatch here.
void churnUnderTicks(VirtualMachine &VM, MethodId SumBoxes,
                     std::chrono::milliseconds Duration) {
  auto Until = std::chrono::steady_clock::now() + Duration;
  while (std::chrono::steady_clock::now() < Until)
    ASSERT_EQ(VM.call(SumBoxes, {Value::makeInt(300)}).asInt(),
              300 * 299 / 2);
}

TEST_F(ProfilerTest, SurvivesGcStressWithSampling) {
  ChurnProgram CP = makeChurnProgram();
  VMOptions O = optionsFor(ExecMode::Linear);
  O.Memory.StressGc = true; // scavenge at every allocation
  VirtualMachine VM(CP.P, O);
  Profiler &P = Profiler::get();
  P.setRateHz(4000);
  P.setAllocPeriodBytes(256);
  P.start();
  churnUnderTicks(VM, CP.SumBoxes, std::chrono::milliseconds(1500));
  P.stop();
  uint32_t Iso = VM.isolate().id();
  uint64_t Total = 0;
  for (uint8_t T = 0; T != ProfNumTiers; ++T)
    Total += P.samplesForIsolate(Iso, ProfTier(T));
  EXPECT_GT(Total + P.otherThreadSamples(), 0u);
  EXPECT_GT(P.allocSamplesForIsolate(Iso), 0u);
}

TEST_F(ProfilerTest, SurvivesParallelScavengeWithThreadChurn) {
  ChurnProgram CP = makeChurnProgram();
  Profiler &P = Profiler::get();
  P.setRateHz(4000);
  P.setAllocPeriodBytes(1024);
  P.start();
  // Four waves of short-lived mutator threads, each with its own VM:
  // exercises per-thread state registration, the thread-exit recycling
  // path, and ticks landing on threads the profiler has never seen.
  std::mutex IdMutex;
  std::vector<uint32_t> IsolateIds;
  for (int Wave = 0; Wave != 4; ++Wave) {
    std::vector<std::thread> Threads;
    std::atomic<bool> Failed{false};
    for (int T = 0; T != 4; ++T)
      Threads.emplace_back([&CP, &Failed, &IdMutex, &IsolateIds] {
        VMOptions TO = optionsFor(ExecMode::Linear);
        TO.Memory.YoungBytes = 1 << 20;
        TO.Memory.GcWorkers = 4;
        VirtualMachine VM(CP.P, TO);
        {
          std::lock_guard<std::mutex> L(IdMutex);
          IsolateIds.push_back(VM.isolate().id());
        }
        for (int I = 0; I != 200; ++I)
          if (VM.call(CP.SumBoxes, {Value::makeInt(200)}).asInt() !=
              200 * 199 / 2)
            Failed.store(true);
      });
    for (std::thread &Th : Threads)
      Th.join();
    EXPECT_FALSE(Failed.load());
  }
  P.stop();
  // Accounting stays coherent and something was recorded. Ticks depend
  // on wall-clock/CPU scheduling, but the alloc stream is volume-driven
  // (each thread allocates far more than the 1 KB period), so the sum
  // below is deterministic even on an oversubscribed test machine.
  uint64_t AllocSamples = 0;
  for (uint32_t Iso : IsolateIds)
    AllocSamples += P.allocSamplesForIsolate(Iso);
  EXPECT_GT(AllocSamples, 0u);
  EXPECT_GT(P.totalSamples() + P.droppedSamples() + P.otherThreadSamples() +
                AllocSamples,
            0u);
}

} // namespace
