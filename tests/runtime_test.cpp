//===- runtime_test.cpp - Tests for heap, GC, monitors, statics -------------===//

#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace jvm;

namespace {

Program twoFieldProgram() {
  Program P;
  ClassId A = P.addClass("A");
  P.addField(A, "x", ValueType::Int);
  P.addField(A, "next", ValueType::Ref);
  P.addStatic("root", ValueType::Ref);
  P.addStatic("count", ValueType::Int);
  return P;
}

TEST(ValueTest, TaggingAndEquality) {
  Value I = Value::makeInt(7);
  Value J = Value::makeInt(7);
  Value K = Value::makeInt(8);
  EXPECT_TRUE(I.isInt());
  EXPECT_EQ(I.asInt(), 7);
  EXPECT_EQ(I, J);
  EXPECT_FALSE(I == K);
  Value N = Value::makeRef(nullptr);
  EXPECT_TRUE(N.isRef());
  EXPECT_FALSE(I == N);
  EXPECT_TRUE(Value::makeVoid().isVoid());
  EXPECT_EQ(Value::defaultOf(ValueType::Int), Value::makeInt(0));
  EXPECT_EQ(Value::defaultOf(ValueType::Ref), Value::makeRef(nullptr));
}

TEST(HeapTest, InstanceAllocationTypesDefaults) {
  Program P = twoFieldProgram();
  Runtime RT(P);
  HeapObject *O = RT.allocateInstance(0);
  ASSERT_NE(O, nullptr);
  EXPECT_EQ(O->objectClass(), 0);
  EXPECT_FALSE(O->isArray());
  ASSERT_EQ(O->numSlots(), 2u);
  EXPECT_EQ(O->slot(0), Value::makeInt(0));
  EXPECT_EQ(O->slot(1), Value::makeRef(nullptr));
  // 24-byte header + 16 bytes per slot — the real footprint of the
  // moving-safe inline layout, exactly what the allocator bumped.
  EXPECT_EQ(O->sizeInBytes(), HeapObject::allocationSize(2));
  EXPECT_EQ(O->sizeInBytes(), 24u + 32u);
}

TEST(HeapTest, ArrayAllocationAndLength) {
  Program P;
  Runtime RT(P);
  HeapObject *A = RT.heap().allocateArray(ValueType::Int, 10);
  EXPECT_TRUE(A->isArray());
  EXPECT_EQ(A->length(), 10);
  EXPECT_EQ(A->slot(9), Value::makeInt(0));
  A->setSlot(3, Value::makeInt(42));
  EXPECT_EQ(A->slot(3), Value::makeInt(42));
  EXPECT_EQ(A->sizeInBytes(), 24u + 160u);
}

TEST(HeapTest, MetricsAccumulate) {
  Program P = twoFieldProgram();
  Runtime RT(P);
  RT.allocateInstance(0);
  RT.allocateInstance(0);
  RT.heap().allocateArray(ValueType::Ref, 4);
  EXPECT_EQ(RT.heap().allocationCount(), 3u);
  EXPECT_EQ(RT.heap().allocatedBytes(), 56u + 56u + 88u);
  RT.heap().collect();
  EXPECT_GE(RT.heap().gcRuns(), 1u);
  RT.heap().resetMetrics();
  EXPECT_EQ(RT.heap().allocationCount(), 0u);
  EXPECT_EQ(RT.heap().allocatedBytes(), 0u);
  // resetMetrics clears the *full* GC metric window, gcRuns included
  // (the seed heap left it accumulating across bench warmup windows).
  EXPECT_EQ(RT.heap().gcRuns(), 0u);
  EXPECT_EQ(RT.heap().bytesCopied(), 0u);
  EXPECT_EQ(RT.heap().bytesPromoted(), 0u);
  EXPECT_EQ(RT.heap().scavengePauses().count(), 0u);
  EXPECT_EQ(RT.heap().fullGcPauses().count(), 0u);
}

TEST(GcTest, UnreachableObjectsAreCollected) {
  Program P = twoFieldProgram();
  Runtime RT(P);
  for (int I = 0; I != 1000; ++I)
    RT.allocateInstance(0);
  EXPECT_EQ(RT.heap().liveObjects(), 1000u);
  RT.heap().collect();
  EXPECT_EQ(RT.heap().liveObjects(), 0u);
}

TEST(GcTest, StaticsAreRoots) {
  Program P = twoFieldProgram();
  Runtime RT(P);
  HeapObject *Kept = RT.allocateInstance(0);
  Kept->setSlot(0, Value::makeInt(77));
  RT.setStatic(0, Value::makeRef(Kept));
  RT.allocateInstance(0); // Garbage.
  RT.heap().collect();
  EXPECT_EQ(RT.heap().liveObjects(), 1u);
  // The collector moves objects: re-read the (updated) static root
  // instead of the stale pre-GC pointer, and check identity by content.
  HeapObject *Moved = RT.getStatic(0).asRef();
  ASSERT_NE(Moved, nullptr);
  EXPECT_EQ(Moved->slot(0), Value::makeInt(77));
  EXPECT_EQ(Moved->objectClass(), 0);
}

TEST(GcTest, ReachabilityIsTransitive) {
  Program P = twoFieldProgram();
  Runtime RT(P);
  HeapObject *A = RT.allocateInstance(0);
  HeapObject *B = RT.allocateInstance(0);
  HeapObject *C = RT.allocateInstance(0);
  A->setSlot(1, Value::makeRef(B));
  B->setSlot(1, Value::makeRef(C));
  // Cycle back to A must not hang the collector.
  C->setSlot(1, Value::makeRef(A));
  RT.setStatic(0, Value::makeRef(A));
  RT.allocateInstance(0); // Garbage.
  RT.heap().collect();
  EXPECT_EQ(RT.heap().liveObjects(), 3u);
}

TEST(GcTest, RootScopeProtectsTemporaries) {
  Program P = twoFieldProgram();
  Runtime RT(P);
  std::vector<Value> Temps;
  Temps.push_back(Value::makeRef(RT.allocateInstance(0)));
  {
    Runtime::RootScope Scope(RT, &Temps);
    RT.heap().collect();
    EXPECT_EQ(RT.heap().liveObjects(), 1u);
  }
  RT.heap().collect();
  EXPECT_EQ(RT.heap().liveObjects(), 0u);
}

TEST(GcTest, AutomaticCollectionAtThreshold) {
  Program P = twoFieldProgram();
  Runtime RT(P);
  // Default threshold is 64 MiB; allocate ~96 MiB of garbage (32 bytes per
  // object) and expect at least one automatic collection.
  for (int I = 0; I != 3 * 1024 * 1024; ++I)
    RT.allocateInstance(0);
  EXPECT_GE(RT.heap().gcRuns(), 1u);
  EXPECT_LT(RT.heap().liveObjects(), 3u * 1024 * 1024);
}

TEST(MonitorTest, EnterExitCountsAndNesting) {
  Program P = twoFieldProgram();
  Runtime RT(P);
  HeapObject *O = RT.allocateInstance(0);
  RT.monitorEnter(O);
  RT.monitorEnter(O);
  EXPECT_EQ(O->lockCount(), 2);
  RT.monitorExit(O);
  EXPECT_EQ(O->lockCount(), 1);
  RT.monitorExit(O);
  EXPECT_EQ(O->lockCount(), 0);
  EXPECT_EQ(RT.metrics().MonitorOps, 4u);
}

TEST(RuntimeTest, StaticsDefaultsAndReset) {
  Program P = twoFieldProgram();
  Runtime RT(P);
  EXPECT_EQ(RT.getStatic(0), Value::makeRef(nullptr));
  EXPECT_EQ(RT.getStatic(1), Value::makeInt(0));
  RT.setStatic(1, Value::makeInt(99));
  RT.resetStatics();
  EXPECT_EQ(RT.getStatic(1), Value::makeInt(0));
}

} // namespace
