//===- writebarrier_test.cpp - Card-table write barriers across tiers ---------===//
//
// PR 8 surface: every mutator store path (interpreter, graph walker,
// linear executor, native copy-and-patch templates) must dirty the
// holder's card when it may create an old->young reference; the
// scavenger must find children reachable ONLY through the remembered
// set; the card lifecycle (consume on scan, re-mark while young refs
// remain) must converge; the opt-in heap verifier must catch a missed
// barrier; and the pause-budget controller must resize the young
// generation. Parallel-scavenge determinism lives in
// scavenge_parallel_test.cpp (label "concurrency", TSan sweep).
//
//===----------------------------------------------------------------------===//

#include "bytecode/BytecodeVerifier.h"
#include "bytecode/CodeBuilder.h"
#include "jit/NativeCode.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace jvm;

namespace {

/// Static 0 holds a Node; attach(v) hangs a fresh Node(val=v) off
/// root.next. The child is reachable ONLY through root, so once root
/// is old it survives a scavenge only if the store dirtied root's card.
struct AttachProgram {
  Program P;
  ClassId Node = NoClass;
  FieldIndex Val = -1, Next = -1;
  MethodId Init = NoMethod, Attach = NoMethod, ReadNext = NoMethod;
};

AttachProgram makeAttachProgram() {
  AttachProgram R;
  Program &P = R.P;
  R.Node = P.addClass("Node");
  R.Val = P.addField(R.Node, "val", ValueType::Int);
  R.Next = P.addField(R.Node, "next", ValueType::Ref);
  P.addStatic("root", ValueType::Ref);

  R.Init = P.addMethod("init", NoClass, {}, ValueType::Void);
  {
    CodeBuilder C(P, R.Init);
    unsigned N = C.newLocal();
    C.newObj(R.Node).store(N);
    C.load(N).constI(1).putField(R.Node, R.Val);
    C.load(N).putStatic(0);
    C.retVoid();
    C.finish();
  }

  R.Attach = P.addMethod("attach", NoClass, {ValueType::Int}, ValueType::Void);
  {
    CodeBuilder C(P, R.Attach);
    unsigned N = C.newLocal();
    C.newObj(R.Node).store(N);
    C.load(N).load(0).putField(R.Node, R.Val);
    C.getStatic(0).load(N).putField(R.Node, R.Next);
    C.retVoid();
    C.finish();
  }

  R.ReadNext = P.addMethod("readNext", NoClass, {}, ValueType::Int);
  {
    CodeBuilder C(P, R.ReadNext);
    C.getStatic(0).getField(R.Node, R.Next).getField(R.Node, R.Val).retInt();
    C.finish();
  }
  verifyProgramOrDie(P);
  return R;
}

VMOptions tierOpts(ExecMode E, bool Jit) {
  VMOptions O;
  O.Exec = E;
  O.EnableJit = Jit;
  O.CompileThreshold = 5;
  O.Compiler.PruneMinProfile = 5;
  O.CompilerThreads = 0; // deterministic tier-up points
  O.Memory.RegionBytes = 4096;
  O.Memory.YoungBytes = 8192;
  return O;
}

/// Warms attach into the requested tier, promotes root, performs one
/// more attach through that tier, and asserts the barrier fired and the
/// young child survives the card-driven scavenge.
void expectBarrierInTier(ExecMode E, bool Jit) {
  AttachProgram AP = makeAttachProgram();
  VirtualMachine VM(AP.P, tierOpts(E, Jit));
  Runtime &RT = VM.runtime();
  VM.call(AP.Init, {});
  for (int I = 0; I != 10; ++I)
    VM.call(AP.Attach, {Value::makeInt(I)});
  if (Jit) {
    ASSERT_NE(VM.compiledGraph(AP.Attach), nullptr);
    if (E == ExecMode::Linear)
      ASSERT_NE(VM.compiledLinear(AP.Attach), nullptr);
    if (E == ExecMode::Native)
      ASSERT_NE(VM.compiledNative(AP.Attach), nullptr);
  }
  // PromoteAge = 2: two scavenges age root (and the last warmup child
  // it still references) into the old space.
  RT.heap().scavenge();
  RT.heap().scavenge();
  uint64_t DirtiedBefore = RT.heap().cardsDirtied();
  VM.call(AP.Attach, {Value::makeInt(42)});
  HeapObject *Root = RT.getStatic(0).asRef();
  ASSERT_NE(Root, nullptr);
  EXPECT_TRUE(RT.heap().cardIsDirty(Root))
      << "store tier did not dirty the holder's card";
  EXPECT_GT(RT.heap().cardsDirtied(), DirtiedBefore);
  RT.heap().scavenge();
  EXPECT_GE(RT.heap().cardsScanned(), 1u);
  EXPECT_EQ(VM.call(AP.ReadNext, {}).asInt(), 42)
      << "child only reachable through the remembered set was lost";
}

TEST(WriteBarrierTest, InterpreterStoresDirtyCards) {
  expectBarrierInTier(ExecMode::Linear, /*Jit=*/false);
}

TEST(WriteBarrierTest, GraphWalkerStoresDirtyCards) {
  expectBarrierInTier(ExecMode::Graph, /*Jit=*/true);
}

TEST(WriteBarrierTest, LinearExecutorStoresDirtyCards) {
  expectBarrierInTier(ExecMode::Linear, /*Jit=*/true);
}

TEST(WriteBarrierTest, NativeTemplatesDirtyCards) {
  if (!nativeBackendSupported())
    GTEST_SKIP() << "native backend not built for this host";
  expectBarrierInTier(ExecMode::Native, /*Jit=*/true);
}

TEST(WriteBarrierTest, ArrayStoresDirtyCardsInEveryTier) {
  // Same shape through ArrStoreRef: static 0 holds a ref-array born old
  // enough, attach stores the young child into slot 1.
  for (int Mode = 0; Mode != 2; ++Mode) {
    Program P;
    ClassId Node = P.addClass("Node");
    FieldIndex Val = P.addField(Node, "val", ValueType::Int);
    P.addStatic("arr", ValueType::Ref);
    MethodId Attach =
        P.addMethod("attach", NoClass, {ValueType::Int}, ValueType::Void);
    {
      CodeBuilder C(P, Attach);
      unsigned N = C.newLocal();
      C.newObj(Node).store(N);
      C.load(N).load(0).putField(Node, Val);
      C.getStatic(0).constI(1).load(N).arrStoreRef();
      C.retVoid();
      C.finish();
    }
    MethodId Read = P.addMethod("read", NoClass, {}, ValueType::Int);
    {
      CodeBuilder C(P, Read);
      C.getStatic(0).constI(1).arrLoadRef().getField(Node, Val).retInt();
      C.finish();
    }
    verifyProgramOrDie(P);

    VirtualMachine VM(P, tierOpts(ExecMode::Linear, /*Jit=*/Mode == 1));
    Runtime &RT = VM.runtime();
    RT.setStatic(0,
                 Value::makeRef(RT.heap().allocateArray(ValueType::Ref, 4)));
    for (int I = 0; I != 10; ++I)
      VM.call(Attach, {Value::makeInt(I)});
    RT.heap().scavenge();
    RT.heap().scavenge(); // array promotes
    VM.call(Attach, {Value::makeInt(7)});
    EXPECT_TRUE(RT.heap().cardIsDirty(RT.getStatic(0).asRef()))
        << "mode " << Mode;
    RT.heap().scavenge();
    EXPECT_EQ(VM.call(Read, {}).asInt(), 7) << "mode " << Mode;
  }
}

// Card lifecycle -------------------------------------------------------------

TEST(CardLifecycleTest, CardStaysDirtyWhileYoungRefsRemainThenClears) {
  AttachProgram AP = makeAttachProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 8192;
  Runtime RT(AP.P, C);
  HeapObject *Parent = RT.allocateInstance(AP.Node);
  RT.setStatic(0, Value::makeRef(Parent));
  RT.heap().scavenge();
  RT.heap().scavenge(); // parent is old now
  Parent = RT.getStatic(0).asRef();
  HeapObject *Child = RT.allocateInstance(AP.Node);
  Child->setSlot(0, Value::makeInt(9));
  RT.heap().write(Parent, 1, Value::makeRef(Child));
  ASSERT_TRUE(RT.heap().cardIsDirty(Parent));
  // Scavenge 1 consumes the card but must re-mark it: the child was
  // copied (age 1), so the old->young edge still exists.
  RT.heap().scavenge();
  Parent = RT.getStatic(0).asRef();
  EXPECT_TRUE(RT.heap().cardIsDirty(Parent));
  EXPECT_EQ(Parent->slot(1).asRef()->slot(0), Value::makeInt(9));
  // Scavenge 2 promotes the child: the edge is old->old, the consumed
  // card must NOT come back.
  RT.heap().scavenge();
  Parent = RT.getStatic(0).asRef();
  EXPECT_FALSE(RT.heap().cardIsDirty(Parent));
  EXPECT_EQ(Parent->slot(1).asRef()->slot(0), Value::makeInt(9));
}

TEST(CardLifecycleTest, ScanOldFallbackStillFindsChildren) {
  // JVM_GC_SCAN_OLD=1 semantics: ignore the remembered set and walk the
  // whole old space (the "before" mode bench_gc_oldspace compares
  // against). Correctness must be identical.
  AttachProgram AP = makeAttachProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 8192;
  C.ScanOldFallback = true;
  Runtime RT(AP.P, C);
  HeapObject *Parent = RT.allocateInstance(AP.Node);
  RT.setStatic(0, Value::makeRef(Parent));
  RT.heap().scavenge();
  RT.heap().scavenge();
  Parent = RT.getStatic(0).asRef();
  HeapObject *Child = RT.allocateInstance(AP.Node);
  Child->setSlot(0, Value::makeInt(11));
  RT.heap().write(Parent, 1, Value::makeRef(Child));
  RT.heap().scavenge();
  Parent = RT.getStatic(0).asRef();
  EXPECT_EQ(Parent->slot(1).asRef()->slot(0), Value::makeInt(11));
  EXPECT_EQ(RT.heap().cardsScanned(), 0u); // cards never consumed
}

// Heap verifier --------------------------------------------------------------

TEST(HeapVerifierTest, CleanRunPassesWithVerifierOn) {
  AttachProgram AP = makeAttachProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 8192;
  C.VerifyHeap = true;
  C.FullGcThresholdBytes = 16384;
  Runtime RT(AP.P, C);
  HeapObject *Parent = RT.allocateInstance(AP.Node);
  RT.setStatic(0, Value::makeRef(Parent));
  for (int I = 0; I != 300; ++I) {
    HeapObject *N = RT.allocateInstance(AP.Node);
    N->setSlot(0, Value::makeInt(I));
    Parent = RT.getStatic(0).asRef();
    RT.heap().write(Parent, 1, Value::makeRef(N));
  }
  ASSERT_GE(RT.heap().scavenges(), 1u);
  Parent = RT.getStatic(0).asRef();
  EXPECT_EQ(Parent->slot(1).asRef()->slot(0), Value::makeInt(299));
}

TEST(HeapVerifierDeathTest, MissedBarrierIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AttachProgram AP = makeAttachProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 8192;
  C.VerifyHeap = true;
  Runtime RT(AP.P, C);
  HeapObject *Parent = RT.allocateInstance(AP.Node);
  RT.setStatic(0, Value::makeRef(Parent));
  RT.heap().scavenge();
  RT.heap().scavenge(); // parent is old
  Parent = RT.getStatic(0).asRef();
  HeapObject *Child = RT.allocateInstance(AP.Node);
  // Deliberately skip the barrier: the scavenge won't find the child
  // and the verifier must abort (stale slot or clean-card diagnosis).
  Parent->setSlot(1, Value::makeRef(Child));
  EXPECT_DEATH(RT.heap().scavenge(), "JVM_VERIFY_HEAP");
}

// Pause-budget controller ----------------------------------------------------

TEST(PauseBudgetTest, OverBudgetPausesShrinkTheYoungSpace) {
  AttachProgram AP = makeAttachProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 16384; // 4 regions
  C.PauseBudgetUs = 1;  // any real copying pause overshoots 1us
  Runtime RT(AP.P, C);
  EXPECT_EQ(RT.heap().youngCapacityBytes(), 16384u);
  // A live window guarantees every scavenge actually copies data.
  RT.setStatic(0, Value::makeRef(nullptr));
  for (int I = 0; I != 1200; ++I) {
    HeapObject *N = RT.allocateInstance(AP.Node);
    N->setSlot(0, Value::makeInt(I));
    N->setSlot(1, RT.getStatic(0));
    RT.setStatic(0, Value::makeRef(N));
    if (I % 16 == 15) { // keep the window at 16 nodes
      HeapObject *Cur = RT.getStatic(0).asRef();
      for (int J = 0; J != 15 && Cur; ++J)
        Cur = Cur->slot(1).asRef();
      if (Cur)
        RT.heap().write(Cur, 1, Value::makeRef(nullptr));
    }
  }
  ASSERT_GE(RT.heap().scavenges(), 2u);
  // At least one over-budget pause halved the cap; +1-region growth can
  // recover at most partially between collections.
  EXPECT_LT(RT.heap().youngCapacityBytes(), 16384u);
  EXPECT_GE(RT.heap().youngCapacityBytes(), 8192u);
}

TEST(PauseBudgetTest, GenerousBudgetKeepsFullYoungSpace) {
  AttachProgram AP = makeAttachProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 16384;
  C.PauseBudgetUs = 10 * 1000 * 1000; // 10s: never exceeded
  Runtime RT(AP.P, C);
  for (int I = 0; I != 1200; ++I)
    RT.allocateInstance(AP.Node);
  ASSERT_GE(RT.heap().scavenges(), 1u);
  EXPECT_EQ(RT.heap().youngCapacityBytes(), 16384u);
}

// GC record plumbing ---------------------------------------------------------

TEST(GcRecordTest, RecordsCarryCardAndWorkerCounts) {
  AttachProgram AP = makeAttachProgram();
  memory::MemoryConfig C;
  C.RegionBytes = 4096;
  C.YoungBytes = 8192;
  Runtime RT(AP.P, C);
  HeapObject *Parent = RT.allocateInstance(AP.Node);
  RT.setStatic(0, Value::makeRef(Parent));
  RT.heap().scavenge();
  RT.heap().scavenge();
  Parent = RT.getStatic(0).asRef();
  HeapObject *Child = RT.allocateInstance(AP.Node);
  RT.heap().write(Parent, 1, Value::makeRef(Child));
  RT.heap().scavenge();
  const auto &Recs = RT.heap().gcRecords();
  ASSERT_EQ(Recs.size(), 3u);
  EXPECT_FALSE(Recs.back().Full);
  EXPECT_GE(Recs.back().CardsScanned, 1u);
  EXPECT_GE(Recs.back().Workers, 1u);
  EXPECT_EQ(RT.heap().lastGcWorkers(), Recs.back().Workers);
  RT.heap().resetMetrics();
  EXPECT_TRUE(RT.heap().gcRecords().empty());
  EXPECT_EQ(RT.heap().cardsDirtied(), 0u);
  EXPECT_EQ(RT.heap().cardsScanned(), 0u);
}

} // namespace
