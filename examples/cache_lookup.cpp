//===- cache_lookup.cpp - Cache workload across all three EA modes -------------===//
//
// Runs the Key-cache workload (the paper's motivating scenario) in the
// full tiered VM under all three escape-analysis configurations and
// prints the metrics the paper's evaluation reports. Demonstrates the
// paper's core claim: all-or-nothing escape analysis cannot touch an
// object that escapes on *any* path, while partial escape analysis
// optimizes every path where it does not.
//
// Run:  ./examples/cache_lookup [lookups-per-phase]
//
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"
#include "workloads/StdLib.h"

#include <cstdio>
#include <cstdlib>

using namespace jvm;
using namespace jvm::workloads;

int main(int Argc, char **Argv) {
  int Lookups = Argc > 1 ? std::atoi(Argv[1]) : 20000;
  WorkloadProgram W = buildWorkloadProgram();

  std::printf("Key-cache workload: %d lookups per phase, ~87%% hit rate\n\n",
              Lookups);
  std::printf("%-26s %12s %12s %12s %10s\n", "configuration", "allocs",
              "bytes", "monitor-ops", "deopts");

  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::FlowInsensitive,
        EscapeAnalysisMode::Partial}) {
    VMOptions VO;
    VO.Compiler.EAMode = Mode;
    VirtualMachine VM(W.P, VO);
    VM.call(W.Setup, {});

    // Warm up: mixed hits and misses to build realistic profiles.
    VM.call(W.CacheLookup, {Value::makeInt(2000), Value::makeInt(8)});
    VM.call(W.CacheLookup, {Value::makeInt(2000), Value::makeInt(8)});
    // Background compiles must finish before the measured phase, or the
    // counters below would include interpreted iterations.
    VM.waitForCompilerIdle();

    VM.runtime().resetMetrics();
    int64_t Sum =
        VM.call(W.CacheLookup, {Value::makeInt(Lookups), Value::makeInt(8)})
            .asInt();
    const Runtime &RT = VM.runtime();
    std::printf("%-26s %12llu %12llu %12llu %10llu   (checksum %lld)\n",
                escapeAnalysisModeName(Mode),
                (unsigned long long)RT.heap().allocationCount(),
                (unsigned long long)RT.heap().allocatedBytes(),
                (unsigned long long)RT.metrics().MonitorOps,
                (unsigned long long)RT.metrics().Deopts,
                (long long)Sum);
  }

  std::printf("\nThe Key escapes into the cache on misses only, so the "
              "flow-insensitive analysis must keep every allocation; the "
              "partial analysis allocates only on actual misses.\n");
  return 0;
}
