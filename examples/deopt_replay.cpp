//===- deopt_replay.cpp - Virtual objects across deoptimization -----------------===//
//
// The paper's Section 5.5 in action: a branch that never executed during
// profiling is speculatively replaced by a Deoptimize sink; partial
// escape analysis then virtualizes an object that is live across that
// point, describing it symbolically in the frame state. When the cold
// input finally shows up, compiled code bails out, the deoptimizer
// re-allocates the object from its virtual mapping (re-acquiring elided
// locks) and the interpreter finishes the computation — observably
// identical to never having optimized at all. After enough failures the
// VM invalidates and recompiles without the speculation.
//
// Run:  ./examples/deopt_replay
//
//===----------------------------------------------------------------------===//

#include "bytecode/CodeBuilder.h"
#include "bytecode/BytecodeVerifier.h"
#include "ir/Printer.h"
#include "vm/VirtualMachine.h"

#include <cstdio>

using namespace jvm;

int main() {
  // score(x, threshold): tally = new Tally; synchronized(tally) {
  //   tally.total = x * 3;
  //   if (x > threshold) auditLog = tally;   // cold: never in profiling
  // } return tally.total;
  Program P;
  ClassId Tally = P.addClass("Tally");
  FieldIndex TotalF = P.addField(Tally, "total", ValueType::Int);
  StaticIndex AuditLog = P.addStatic("auditLog", ValueType::Ref);
  MethodId Score = P.addMethod("score", NoClass,
                               {ValueType::Int, ValueType::Int},
                               ValueType::Int);
  {
    CodeBuilder C(P, Score);
    unsigned T = C.newLocal();
    Label NoAudit = C.newLabel();
    C.newObj(Tally).store(T);
    C.load(T).monEnter();
    C.load(T).load(0).constI(3).mul().putField(Tally, TotalF);
    C.load(0).load(1).ifLe(NoAudit);
    C.load(T).putStatic(AuditLog); // The object escapes here only.
    C.bind(NoAudit);
    C.load(T).monExit();
    C.load(T).getField(Tally, TotalF).retInt();
    C.finish();
  }
  verifyProgramOrDie(P);

  VMOptions VO;
  VO.CompileThreshold = 20;
  VO.Compiler.PruneMinProfile = 20;
  VO.MaxDeoptsPerMethod = 3;
  VirtualMachine VM(P, VO);

  std::printf("Profiling with x <= threshold: the audit branch is never "
              "taken...\n");
  for (int I = 0; I != 40; ++I)
    VM.call(Score, {Value::makeInt(I % 10), Value::makeInt(100)});
  // The compile may still be in flight on a broker worker; the narrative
  // below dereferences the installed graph.
  VM.waitForCompilerIdle();
  std::printf("  compiled: %s,  allocations so far: %llu\n",
              VM.compiledGraph(Score) ? "yes" : "no",
              (unsigned long long)VM.runtime().heap().allocationCount());
  std::printf("\nCompiled IR (the Tally exists only as a frame-state "
              "mapping):\n%s\n",
              graphToString(*VM.compiledGraph(Score)).c_str());

  VM.runtime().resetMetrics();
  std::printf("Fast path, x=5: result=%lld, allocations=%llu, "
              "monitor-ops=%llu (everything virtual)\n",
              (long long)VM.call(Score, {Value::makeInt(5),
                                         Value::makeInt(100)}).asInt(),
              (unsigned long long)VM.runtime().heap().allocationCount(),
              (unsigned long long)VM.runtime().metrics().MonitorOps);

  VM.runtime().resetMetrics();
  int64_t R = VM.call(Score, {Value::makeInt(500), Value::makeInt(100)})
                  .asInt();
  HeapObject *Logged = VM.runtime().getStatic(AuditLog).asRef();
  std::printf("\nCold path, x=500: result=%lld, deopts=%llu, "
              "allocations=%llu, monitor-ops=%llu\n",
              (long long)R,
              (unsigned long long)VM.runtime().metrics().Deopts,
              (unsigned long long)VM.runtime().heap().allocationCount(),
              (unsigned long long)VM.runtime().metrics().MonitorOps);
  std::printf("  audit log object rebuilt from the frame state: "
              "total=%lld (expected %d)\n",
              Logged ? (long long)Logged->slot(TotalF).asInt() : -1, 1500);

  std::printf("\nRepeating the cold input until the VM gives up on the "
              "speculation...\n");
  for (int I = 0; I != 5; ++I)
    VM.call(Score, {Value::makeInt(500), Value::makeInt(100)});
  VM.waitForCompilerIdle(); // Let the deopt-free recompilation install.
  std::printf("  invalidations=%llu; recompiled without the pruned branch "
              "(x=500 -> %lld, no further deopts)\n",
              (unsigned long long)VM.jitMetrics().Invalidations,
              (long long)VM.call(Score, {Value::makeInt(500),
                                         Value::makeInt(100)}).asInt());
  return 0;
}
