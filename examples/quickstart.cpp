//===- quickstart.cpp - The paper's running example, end to end ---------------===//
//
// Builds the paper's getValue example (Listing 4), compiles it with the
// same pipeline the VM uses, and prints the IR before and after partial
// escape analysis — reproducing the Listing 5 -> Listing 6
// transformation and Figure 2's graph. Then it runs both versions and
// prints the allocation/lock counters.
//
// Run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "compiler/Canonicalizer.h"
#include "compiler/DeadCodeElimination.h"
#include "compiler/GVN.h"
#include "compiler/GraphBuilder.h"
#include "compiler/Inliner.h"
#include "ir/Printer.h"
#include "pea/PartialEscapeAnalysis.h"
#include "vm/VirtualMachine.h"
#include "workloads/StdLib.h"

#include <cstdio>

using namespace jvm;
using namespace jvm::workloads;

int main() {
  WorkloadProgram W = buildWorkloadProgram();

  std::printf("=== The paper's getValue (Listing 4) as bytecode ===\n");
  // Warm a VM so profiles devirtualize and inline Key.equals, then
  // compile once without and once with PEA.
  VMOptions VO;
  VO.EnableJit = false; // Interpret only: we drive compilation by hand.
  VirtualMachine VM(W.P, VO);
  VM.call(W.Setup, {});
  for (int I = 0; I != 60; ++I)
    VM.call(W.GetValue, {Value::makeInt((I / 2) % 3), Value::makeRef(nullptr)});

  CompilerOptions CO;
  std::unique_ptr<Graph> G =
      buildGraph(W.P, W.GetValue, &VM.profiles().of(W.GetValue), CO);
  canonicalize(*G, W.P);
  inlineCalls(*G, W.P, &VM.profiles(), CO);
  canonicalize(*G, W.P);
  runGVN(*G);
  eliminateDeadCode(*G);

  std::printf("\n=== Graal IR after inlining (the paper's Listing 5 / "
              "Figure 2) ===\n%s\n",
              graphToString(*G).c_str());

  PEAStats Stats;
  runPartialEscapeAnalysis(*G, W.P, CO, &Stats);
  canonicalize(*G, W.P);
  runGVN(*G);
  eliminateDeadCode(*G);
  canonicalize(*G, W.P);
  eliminateDeadCode(*G);

  std::printf("=== After partial escape analysis (the paper's Listing 6) "
              "===\n%s\n",
              graphToString(*G).c_str());
  std::printf("PEA statistics: %u allocation(s) virtualized, %u "
              "materialization site(s), %u field accesses scalar-replaced, "
              "%u monitor operation(s) elided, %u check(s) folded\n\n",
              Stats.VirtualizedAllocations, Stats.MaterializeSites,
              Stats.ScalarReplacedLoads + Stats.ScalarReplacedStores,
              Stats.ElidedMonitorOps, Stats.FoldedChecks);

  // Now the same thing through the tiered VM, measuring a hit-heavy
  // phase under each configuration.
  std::printf("=== Tiered execution: 1000 cache hits ===\n");
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::Partial}) {
    VMOptions TieredVO;
    TieredVO.CompileThreshold = 50;
    TieredVO.Compiler.EAMode = Mode;
    VirtualMachine TVM(W.P, TieredVO);
    TVM.call(W.Setup, {});
    for (int I = 0; I != 100; ++I)
      TVM.call(W.GetValue,
               {Value::makeInt((I / 2) % 3), Value::makeRef(nullptr)});
    // Quiesce the compile broker so the 1000 measured hits all run the
    // optimized code rather than racing its installation.
    TVM.waitForCompilerIdle();
    TVM.runtime().resetMetrics();
    for (int I = 0; I != 1000; ++I)
      TVM.call(W.GetValue, {Value::makeInt(1), Value::makeRef(nullptr)});
    std::printf("  %-26s allocations=%-6llu monitor-ops=%llu\n",
                escapeAnalysisModeName(Mode),
                (unsigned long long)TVM.runtime().heap().allocationCount(),
                (unsigned long long)TVM.runtime().metrics().MonitorOps);
  }
  std::printf("\nPartial escape analysis removed both the Key allocation "
              "and the synchronized equals lock on the hit path.\n");
  return 0;
}
