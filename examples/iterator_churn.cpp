//===- iterator_churn.cpp - Scala-style abstraction overhead --------------------===//
//
// The ScalaDaCapo story: layers of small short-lived objects (iterators,
// boxed values, tuples) created by abstraction, removed by escape
// analysis. Runs the iterator and tuple-churn kernels and shows where
// the two analyses differ: the iterator never escapes (both remove it),
// the tuples escape rarely (only the partial analysis wins).
//
// Run:  ./examples/iterator_churn [elements]
//
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"
#include "workloads/StdLib.h"

#include <cstdio>
#include <cstdlib>

using namespace jvm;
using namespace jvm::workloads;

namespace {

void runKernel(const WorkloadProgram &W, const char *Title, MethodId Kernel,
               int64_t N, int64_t M) {
  std::printf("%s\n", Title);
  std::printf("  %-26s %12s %12s\n", "configuration", "allocs", "bytes");
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::None, EscapeAnalysisMode::FlowInsensitive,
        EscapeAnalysisMode::Partial}) {
    VMOptions VO;
    VO.Compiler.EAMode = Mode;
    VirtualMachine VM(W.P, VO);
    VM.call(W.Setup, {});
    for (int I = 0; I != 3; ++I)
      VM.call(Kernel, {Value::makeInt(N / 10), Value::makeInt(M)});
    VM.waitForCompilerIdle(); // Measure compiled code, not install lag.
    VM.runtime().resetMetrics();
    VM.call(Kernel, {Value::makeInt(N), Value::makeInt(M)});
    std::printf("  %-26s %12llu %12llu\n", escapeAnalysisModeName(Mode),
                (unsigned long long)VM.runtime().heap().allocationCount(),
                (unsigned long long)VM.runtime().heap().allocatedBytes());
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  int64_t N = Argc > 1 ? std::atoll(Argv[1]) : 50000;
  WorkloadProgram W = buildWorkloadProgram();

  runKernel(W, "Iterator over an array (never escapes: both analyses win)",
            W.IterSum, N / 50, 64);
  runKernel(W,
            "Tuple churn, 1-in-256 escapes (only partial escape analysis "
            "wins)",
            W.PairChurn, N, 256);
  runKernel(W, "Boxing churn, every box escapes (no analysis can win)",
            W.BoxedSum, N, 1);
  return 0;
}
